"""ASCII floorplan rendering.

The paper communicates its placement stories through die maps (Fig. 4's
six regions, Fig. 5(a)'s color-graded placements).  This module renders
the same views as text: the device grid downsampled to a character
raster, with column types, clock-region boundaries, Pblock outlines and
placed designs overlaid.  Used by the examples and invaluable when
debugging placement constraints.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.fpga.device import DeviceModel, SiteType
from repro.fpga.placement import Pblock, Placement

#: Character for each column type in the background raster.
COLUMN_GLYPHS = {
    SiteType.SLICE: ".",
    SiteType.DSP: "D",
    SiteType.BRAM: "B",
    SiteType.IO: "|",
}


class Floorplan:
    """A character raster over a device.

    Parameters
    ----------
    device:
        The device to draw.
    width, height:
        Raster size in characters; the die is downsampled onto it.
        Defaults keep roughly one character per two tiles horizontally.
    """

    def __init__(
        self,
        device: DeviceModel,
        width: Optional[int] = None,
        height: Optional[int] = None,
    ) -> None:
        self.device = device
        self.width = width or device.width
        self.height = height or max(10, device.height // 5)
        if self.width < 4 or self.height < 4:
            raise ConfigurationError("floorplan raster too small to draw")
        self._grid: List[List[str]] = [
            [" "] * self.width for _ in range(self.height)
        ]
        self._draw_background()

    # ------------------------------------------------------------------
    def _to_raster(self, x: float, y: float) -> Tuple[int, int]:
        cx = int(x / self.device.width * (self.width - 1))
        # Row 0 is the TOP of the drawing; die y grows upward.
        cy = self.height - 1 - int(y / self.device.height * (self.height - 1))
        return (min(max(cx, 0), self.width - 1), min(max(cy, 0), self.height - 1))

    def _draw_background(self) -> None:
        for cx in range(self.width):
            die_x = int(cx / (self.width - 1) * (self.device.width - 1))
            glyph = COLUMN_GLYPHS[self.device._column_kind(die_x)]
            for cy in range(self.height):
                self._grid[cy][cx] = glyph
        # Clock-region boundaries as horizontal rules.
        for region in self.device.clock_regions:
            if region.y0 == 0:
                continue
            _cx, cy = self._to_raster(0, region.y0)
            for cx in range(self.width):
                if self._grid[cy][cx] == ".":
                    self._grid[cy][cx] = "-"

    # ------------------------------------------------------------------
    def draw_pblock(self, pblock: Pblock, label: Optional[str] = None) -> None:
        """Outline a Pblock with ``#`` and drop a label inside."""
        x0, y0 = self._to_raster(pblock.x0, pblock.y0)
        x1, y1 = self._to_raster(pblock.x1, pblock.y1)
        top, bottom = min(y0, y1), max(y0, y1)
        left, right = min(x0, x1), max(x0, x1)
        for cx in range(left, right + 1):
            self._grid[top][cx] = "#"
            self._grid[bottom][cx] = "#"
        for cy in range(top, bottom + 1):
            self._grid[cy][left] = "#"
            self._grid[cy][right] = "#"
        text = label if label is not None else pblock.name
        self._write_text(left + 1, top + 1, text[: max(0, right - left - 1)])

    def draw_placement(self, placement: Placement, glyph: str = "*") -> None:
        """Mark every placed cell's site."""
        if len(glyph) != 1:
            raise ConfigurationError("placement glyph must be one character")
        for site in placement.assignment.values():
            cx, cy = self._to_raster(site.x, site.y)
            self._grid[cy][cx] = glyph

    def draw_marker(self, x: float, y: float, glyph: str = "X") -> None:
        """Mark one die position."""
        if len(glyph) != 1:
            raise ConfigurationError("marker glyph must be one character")
        cx, cy = self._to_raster(x, y)
        self._grid[cy][cx] = glyph

    def _write_text(self, cx: int, cy: int, text: str) -> None:
        for i, ch in enumerate(text):
            if 0 <= cx + i < self.width and 0 <= cy < self.height:
                self._grid[cy][cx + i] = ch

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The floorplan as a multi-line string (top row = die top)."""
        body = "\n".join("".join(row) for row in self._grid)
        legend = (
            f"{self.device.name}: . slice  D dsp  B bram  | io  "
            f"- region edge  # pblock"
        )
        return body + "\n" + legend
