"""Pseudo-bitstream generation.

Cloud providers that screen tenant designs (AWS F1 style, [28]/[31] in
the paper) operate on the final implementation artifact, not on HDL.  We
model that artifact as a *pseudo-bitstream*: the placed netlist
serialized into per-site configuration records plus the routing
(net connectivity).  The :mod:`repro.defense` checker consumes only this
representation — it never sees the Python objects that built the design —
which keeps the attacker/defender interface honest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import NetlistError
from repro.fpga.netlist import Netlist
from repro.fpga.placement import Placement


@dataclass(frozen=True)
class ConfigFrame:
    """One site's configuration record."""

    site: str
    site_x: int
    site_y: int
    cell: str
    cell_type: str
    attributes: Tuple[Tuple[str, object], ...]

    def attribute(self, name: str, default=None):
        """Look an attribute value up by name."""
        for key, value in self.attributes:
            if key == name:
                return value
        return default


@dataclass(frozen=True)
class RouteRecord:
    """One net's connectivity as visible in the routing frames."""

    net: str
    driver: Tuple[str, str]
    sinks: Tuple[Tuple[str, str], ...]


@dataclass
class Bitstream:
    """A device-independent pseudo-bitstream: configuration frames plus
    routing records."""

    design: str
    device: str
    frames: List[ConfigFrame] = field(default_factory=list)
    routes: List[RouteRecord] = field(default_factory=list)

    def frames_of_type(self, cell_type: str) -> List[ConfigFrame]:
        """All configuration frames for one primitive type."""
        return [f for f in self.frames if f.cell_type == cell_type]

    def frame_for_cell(self, cell: str) -> ConfigFrame:
        """The configuration frame of one named cell."""
        for frame in self.frames:
            if frame.cell == cell:
                return frame
        raise NetlistError(f"no frame for cell {cell!r} in bitstream {self.design!r}")

    # -- serialisation --------------------------------------------------
    def to_json(self) -> str:
        """Serialize to a JSON string (the on-disk bitstream format)."""
        return json.dumps(
            {
                "design": self.design,
                "device": self.device,
                "frames": [
                    {
                        "site": f.site,
                        "x": f.site_x,
                        "y": f.site_y,
                        "cell": f.cell,
                        "type": f.cell_type,
                        "attrs": dict(f.attributes),
                    }
                    for f in self.frames
                ],
                "routes": [
                    {
                        "net": r.net,
                        "driver": list(r.driver),
                        "sinks": [list(s) for s in r.sinks],
                    }
                    for r in self.routes
                ],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "Bitstream":
        """Parse a bitstream back from its JSON form."""
        data = json.loads(text)
        frames = [
            ConfigFrame(
                site=f["site"],
                site_x=int(f["x"]),
                site_y=int(f["y"]),
                cell=f["cell"],
                cell_type=f["type"],
                attributes=tuple(sorted(f["attrs"].items())),
            )
            for f in data["frames"]
        ]
        routes = [
            RouteRecord(
                net=r["net"],
                driver=tuple(r["driver"]),
                sinks=tuple(tuple(s) for s in r["sinks"]),
            )
            for r in data["routes"]
        ]
        return cls(design=data["design"], device=data["device"], frames=frames, routes=routes)


def reconstruct_netlist(bitstream: Bitstream) -> Netlist:
    """Rebuild a structural netlist from a pseudo-bitstream.

    This is the provider-side inverse of :func:`generate_bitstream`:
    checkers that need graph or timing analysis (e.g. the Section V
    timing rule) reconstruct the design from the submitted artifact
    alone.  Route endpoints that have no configuration frame are
    declared as top-level ports (drivers as inputs, sinks as outputs).
    """
    from repro.fpga.primitives import (
        CARRY4,
        DSP48E1,
        DSP48E2,
        FDRE,
        IDELAYE2,
        IDELAYE3,
        LUT,
    )

    nl = Netlist(bitstream.design)
    for frame in bitstream.frames:
        attrs = dict(frame.attributes)
        if frame.cell_type == "LUT":
            prim = LUT(frame.cell, k=int(attrs["K"]), init=int(attrs["INIT"]))
        elif frame.cell_type == "CARRY4":
            prim = CARRY4(frame.cell)
        elif frame.cell_type == "FDRE":
            prim = FDRE(frame.cell, **attrs)
        elif frame.cell_type == "DSP48E1":
            prim = DSP48E1(frame.cell, **attrs)
        elif frame.cell_type == "DSP48E2":
            prim = DSP48E2(frame.cell, **attrs)
        elif frame.cell_type == "IDELAYE2":
            prim = IDELAYE2(frame.cell, **attrs)
        elif frame.cell_type == "IDELAYE3":
            prim = IDELAYE3(frame.cell, **attrs)
        else:
            raise NetlistError(
                f"bitstream {bitstream.design!r}: unknown cell type "
                f"{frame.cell_type!r}"
            )
        nl.add_cell(prim)

    known = set(nl.cells)
    for route in bitstream.routes:
        driver_cell = route.driver[0]
        if driver_cell not in known and driver_cell not in nl.ports:
            nl.add_port(driver_cell, "in")
        for sink_cell, _port in route.sinks:
            if sink_cell not in known and sink_cell not in nl.ports:
                nl.add_port(sink_cell, "out")
        nl.connect(route.net, tuple(route.driver), list(route.sinks))
    nl.validate()
    return nl


def generate_bitstream(netlist: Netlist, placement: Placement) -> Bitstream:
    """"Bitgen": serialize a placed netlist into a pseudo-bitstream.

    Every cell must be placed; the routing records are the netlist's
    connectivity verbatim (our model has no routing fabric detail).
    """
    netlist.validate()
    frames: List[ConfigFrame] = []
    for cell in netlist.cells.values():
        site = placement.site_of(cell.name)
        attrs: Dict[str, object] = dict(getattr(cell.primitive, "attributes", {}))
        # LUT truth tables are configuration too.
        if hasattr(cell.primitive, "init"):
            attrs["INIT"] = cell.primitive.init
            attrs["K"] = cell.primitive.k
        frames.append(
            ConfigFrame(
                site=site.name,
                site_x=site.x,
                site_y=site.y,
                cell=cell.name,
                cell_type=cell.type,
                attributes=tuple(sorted(attrs.items())),
            )
        )
    routes = [
        RouteRecord(net=n.name, driver=n.driver, sinks=tuple(n.sinks))
        for n in netlist.nets.values()
    ]
    return Bitstream(
        design=netlist.name,
        device=placement.device.name,
        frames=frames,
        routes=routes,
    )
