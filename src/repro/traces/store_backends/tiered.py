"""Two-tier block store: local directory in front, remote server behind.

:class:`TieredStore` *is a* :class:`~repro.traces.blockstore.
BlockStore` — same directory layout, same memmap zero-copy reads, same
counters object — with a remote :class:`~repro.traces.store_backends.
base.StoreBackend` underneath:

* **Read-through** — a local miss consults the remote tier.  A remote
  hit is digest-verified *before* ingest (bytes that crossed a wire are
  never trusted), atomically published into the local tier, and then
  memmapped from disk exactly like any local hit.  A corrupted wire
  blob is quarantined (``CacheIntegrityWarning`` + counter) and treated
  as a miss — the shard is re-acquired, so results cannot change.
* **Write-behind** — :meth:`put` publishes locally (synchronous, the
  engine's correctness path) and enqueues the remote upload on a
  background publisher thread, so campaign compute never waits on the
  wire.  The publisher skips keys the remote already has (another host
  won the race) and tolerates blocks the local LRU evicted before
  upload.  :meth:`flush` drains the queue; an ``atexit`` hook makes
  process exit drain it too.
* **Degradation, not failure** — a dead or flaky remote logs one
  warning, counts ``remote_errors`` and behaves like an empty tier.
  A fleet with a down artifact server runs at local-cache speed; it
  does not crash.

Engine workers get :meth:`for_worker` views (read-through on, publish
off): all remote publishing funnels through the parent process, which
knows which shards missed and enqueues exactly those — one publisher,
one flush point, no per-process queue to orphan.
"""

from __future__ import annotations

import atexit
import os
import queue
import tempfile
import threading
import time
import warnings
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import CacheError, CacheIntegrityWarning, RemoteCacheError
from repro.telemetry.metrics import get_registry
from repro.traces.blockstore import BlockStore, CachedBlock, verify_blob
from repro.traces.store_backends.base import StoreBackend, contains_many
from repro.traces.store_backends.http import HTTPBackend

#: Publish modes: ``behind`` (background thread, default), ``sync``
#: (inline upload — tests and one-shot scripts), ``off`` (read-through
#: only — engine worker processes).
PUBLISH_MODES = ("behind", "sync", "off")


def default_local_tier() -> Path:
    """A per-user local tier under the system temp directory.

    Used when a remote cache is configured without an explicit local
    directory: read-through needs somewhere to memmap from, and a
    stable per-user path lets consecutive runs reuse their ingests.
    """
    uid = os.getuid() if hasattr(os, "getuid") else "u"
    return Path(tempfile.gettempdir()) / f"repro-cache-tier-{uid}"


class _WriteBehindPublisher:
    """One daemon thread draining (key → remote) uploads."""

    def __init__(self, store: "TieredStore") -> None:
        self._store = store
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._seen: set = set()
        self._lock = threading.Lock()
        self._depth = get_registry().gauge(
            "repro_cache_publish_queue_depth",
            "Blocks waiting on the write-behind remote publisher.",
        )
        self._thread = threading.Thread(
            target=self._run, name="repro-cache-publish", daemon=True
        )
        self._thread.start()
        atexit.register(self.flush)

    def enqueue(self, keys: Iterable[str]) -> int:
        queued = 0
        with self._lock:
            for key in keys:
                if key in self._seen:
                    continue
                self._seen.add(key)
                self._queue.put(key)
                queued += 1
        self._depth.set(self._queue.unfinished_tasks)
        return queued

    def _run(self) -> None:
        while True:
            key = self._queue.get()
            try:
                if key is None:
                    return
                self._store._publish_one(key)
            finally:
                self._queue.task_done()
                self._depth.set(self._queue.unfinished_tasks)

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Wait for the queue to drain; ``False`` on timeout."""
        if timeout is None:
            self._queue.join()
            return True
        deadline = time.monotonic() + timeout
        with self._queue.all_tasks_done:
            while self._queue.unfinished_tasks:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._queue.all_tasks_done.wait(remaining)
        return True

    def close(self) -> None:
        self._queue.put(None)
        self._thread.join(timeout=30)


class TieredStore(BlockStore):
    """A :class:`BlockStore` with a remote tier underneath.

    Parameters
    ----------
    root:
        Local tier directory (exact :class:`BlockStore` layout).
    remote:
        A ``repro cache serve`` URL (``http://host:port``) or any
        :class:`~repro.traces.store_backends.base.StoreBackend`.
    max_bytes / verify_reads:
        As on :class:`BlockStore` (the cap governs the local tier;
        remote ingests count toward it and can evict).
    publish_mode:
        ``"behind"`` (default), ``"sync"`` or ``"off"`` — see module
        docstring.
    """

    def __init__(
        self,
        root: Union[str, Path],
        remote: Union[str, StoreBackend],
        max_bytes: Optional[int] = None,
        verify_reads: bool = True,
        publish_mode: str = "behind",
    ) -> None:
        super().__init__(root, max_bytes=max_bytes, verify_reads=verify_reads)
        if isinstance(remote, str):
            remote = HTTPBackend(remote)
        if not isinstance(remote, StoreBackend):
            raise CacheError(
                f"remote must be a URL or a StoreBackend, got {type(remote).__name__}"
            )
        if publish_mode not in PUBLISH_MODES:
            raise CacheError(
                f"publish_mode {publish_mode!r} not in {PUBLISH_MODES}"
            )
        self.remote = remote
        self.publish_mode = publish_mode
        self._publisher: Optional[_WriteBehindPublisher] = None
        self._counter_lock = threading.Lock()
        self._remote_warned = False

    def __getstate__(self):
        state = super().__getstate__()
        state["remote"] = self.remote
        state["publish_mode"] = self.publish_mode
        return state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TieredStore({str(self.root)!r}, remote={self.remote.describe()!r}, "
            f"publish_mode={self.publish_mode!r})"
        )

    def for_worker(self) -> "TieredStore":
        """A read-through view with publishing off (engine workers)."""
        return TieredStore(
            self.root,
            remote=self.remote,
            max_bytes=self.max_bytes,
            verify_reads=self.verify_reads,
            publish_mode="off",
        )

    # ------------------------------------------------------------------
    # Reads: local tier, then read-through.
    # ------------------------------------------------------------------
    def get(
        self, key: str, touch: bool = True, expect: bool = False
    ) -> Optional[CachedBlock]:
        block = self._local_get(key, touch)
        if block is not None:
            self.counters.hits += 1
            self.counters.bytes_read += block.nbytes
            return block
        outcome, wire_bytes = self._pull(key)
        if outcome == "fetched":
            with self._counter_lock:
                self.counters.remote_hits += 1
                self.counters.remote_bytes_read += wire_bytes
            block = self._local_get(key, touch)
            if block is not None:
                self.counters.bytes_read += block.nbytes
                return block
            # Ingested and immediately evicted (cap far below one
            # block) — fall through to an honest miss.
        else:
            with self._counter_lock:
                self.counters.remote_misses += 1
        self._miss(expect)
        return None

    def fetch(self, key: str) -> Tuple[str, int]:
        """Ensure a key is local without reading it (prefetch path).

        Returns ``(outcome, wire_bytes)`` where outcome is ``"local"``
        (already there), ``"fetched"``, ``"absent"``, ``"bad"`` or
        ``"error"``.  Counter-neutral for hits/misses: the eventual
        :meth:`get` does that accounting; the prefetcher reports its
        own wire totals.
        """
        if self.backend.contains(key):
            return "local", 0
        return self._pull(key)

    def _pull(self, key: str) -> Tuple[str, int]:
        """Download + verify + ingest one key into the local tier."""
        try:
            blob = self.remote.get_blob(key)
        except RemoteCacheError as exc:
            self._remote_error(exc)
            return "error", 0
        if blob is None:
            return "absent", 0
        try:
            verify_blob(blob, key=key)
        except ValueError as exc:
            with self._counter_lock:
                self.counters.integrity_failures += 1
            warnings.warn(
                f"discarding damaged remote block {key[:16]}…: {exc} "
                "(the shard will be re-acquired)",
                CacheIntegrityWarning,
                stacklevel=3,
            )
            return "bad", len(blob)
        self.backend.put_blob(key, blob)
        if self.max_bytes is not None:
            self.prune(self.max_bytes)
        return "fetched", len(blob)

    # ------------------------------------------------------------------
    # Writes: local publish, then write-behind to the remote tier.
    # ------------------------------------------------------------------
    def put(self, key, arrays, meta=None) -> Path:
        path = super().put(key, arrays, meta)
        if self.publish_mode == "behind":
            self._ensure_publisher().enqueue([key])
        elif self.publish_mode == "sync":
            self._publish_one(key)
        return path

    def publish_async(self, keys: Iterable[str]) -> int:
        """Enqueue locally-published keys for remote upload.

        The engine's parent process calls this for every shard that
        missed (its workers publish locally with publishing off), so
        fleet publishing overlaps the rest of the campaign.  Returns
        how many keys were newly enqueued.
        """
        keys = [key for key in keys if key]
        if not keys:
            return 0
        if self.publish_mode == "sync":
            for key in keys:
                self._publish_one(key)
            return len(keys)
        return self._ensure_publisher().enqueue(keys)

    def _ensure_publisher(self) -> _WriteBehindPublisher:
        if self._publisher is None:
            self._publisher = _WriteBehindPublisher(self)
        return self._publisher

    def _publish_one(self, key: str) -> None:
        blob = self.backend.get_blob(key)
        if blob is None:
            # Evicted between local publish and upload — the block is
            # gone, so there is nothing trustworthy to send.
            with self._counter_lock:
                self.counters.remote_publish_dropped += 1
            return
        try:
            if self.remote.contains(key):
                with self._counter_lock:
                    self.counters.remote_publish_skipped += 1
                return
            self.remote.put_blob(key, blob)
        except RemoteCacheError as exc:
            self._remote_error(exc)
            return
        with self._counter_lock:
            self.counters.remote_puts += 1
            self.counters.remote_bytes_written += len(blob)

    def flush(self, timeout: Optional[float] = None) -> None:
        """Drain pending remote publishes (no-op when none)."""
        publisher = self._publisher
        if publisher is not None:
            publisher.flush(timeout)

    def close(self) -> None:
        publisher, self._publisher = self._publisher, None
        if publisher is not None:
            publisher.close()

    # ------------------------------------------------------------------
    # Placement queries (scheduler classification).
    # ------------------------------------------------------------------
    def tier_of(self, key: str) -> Optional[str]:
        if self.backend.contains(key):
            return "local"
        try:
            if self.remote.contains(key):
                return "remote"
        except RemoteCacheError as exc:
            self._remote_error(exc)
        return None

    def tiers_of(self, keys: Iterable[str]) -> Dict[str, Optional[str]]:
        """Tier of many keys; remote probes batched into one round trip."""
        out: Dict[str, Optional[str]] = {}
        pending: List[str] = []
        for key in keys:
            if self.backend.contains(key):
                out[key] = "local"
            else:
                pending.append(key)
        if pending:
            try:
                present = contains_many(self.remote, pending)
            except RemoteCacheError as exc:
                self._remote_error(exc)
                present = {}
            for key in pending:
                out[key] = "remote" if present.get(key) else None
        return out

    # ------------------------------------------------------------------
    def _remote_error(self, exc: Exception) -> None:
        with self._counter_lock:
            self.counters.remote_errors += 1
        if not self._remote_warned:
            self._remote_warned = True
            warnings.warn(
                f"remote cache tier degraded to local-only: {exc}",
                RuntimeWarning,
                stacklevel=4,
            )
