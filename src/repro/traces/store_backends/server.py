"""The ``repro cache serve`` artifact server.

A deliberately small, stdlib-only HTTP server that exposes one block
store directory to a fleet.  The protocol is content-addressed and
idempotent (see :mod:`repro.traces.store_backends.http` for the route
table), which buys the usual artifact-store properties for free:

* **Racing publishers are benign.**  Two hosts PUTting the same key
  write identical bytes (keys are content addresses), and the local
  backend's temp-file + ``os.replace`` publish keeps the last rename
  atomic.
* **The server never trusts the wire.**  Every PUT is re-verified —
  header well-formed, stored key equal to the addressed key, payload
  digest intact — before the blob is published.  A corrupted or
  misaddressed upload is a 400, not a poisoned cache.
* **Replays are safe.**  GET/PUT/HEAD/DELETE all mean the same thing
  executed twice, so the client retries transport failures blindly.

Serving is threaded (``ThreadingHTTPServer``): block reads are file
reads, so concurrency is bounded by disk, not Python.

Observability: every verb is timed into the process-wide metrics
registry (per-verb latency histogram + in-flight gauge, scrapeable at
``GET /metrics`` in Prometheus text format), and requests that carry an
``X-Repro-Trace`` header are appended as span events to an optional
request trace log, so ``repro report trace`` can stitch the server's
side of a job into the submitting service's timeline.
"""

from __future__ import annotations

import json
import os
import threading
import time
from functools import wraps
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.telemetry.metrics import LATENCY_BUCKETS, get_registry
from repro.telemetry.tracing import TRACE_HEADER
from repro.traces.blockstore import SCHEMA_VERSION, BlockStore, verify_blob
from repro.traces.store_backends.base import _KEY_RE

_BLOCKS_PREFIX = "/v1/blocks/"


def _traced(verb: str):
    """Time a handler verb, track in-flight, log trace-scoped spans."""

    def decorate(fn):
        @wraps(fn)
        def wrapper(self: "_CacheRequestHandler"):
            server = self.server
            start = time.time()
            t0 = time.perf_counter()
            self._last_status = 0
            server.metric_inflight.inc()
            try:
                fn(self)
            finally:
                seconds = time.perf_counter() - t0
                server.metric_inflight.dec()
                server.metric_latency.observe(seconds, verb=verb)
                trace_id = self.headers.get(TRACE_HEADER)
                if trace_id:
                    server.log_trace_span(
                        verb, self.path, start, seconds,
                        self._last_status, trace_id,
                    )

        return wrapper

    return decorate

#: Refuse absurd uploads before reading them (a full fig5 block is a
#: few MB; 1 GiB is far beyond any legitimate blob).
MAX_BLOB_BYTES = 1 << 30


class _CacheRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-cache/1"

    server: "CacheServer"  # set by ThreadingHTTPServer machinery

    #: Status of the response in flight (for the request trace log).
    _last_status = 0

    # ------------------------------------------------------------------
    def log_message(self, fmt, *args):  # noqa: D102 - quiet by default
        if self.server.verbose:  # pragma: no cover - debug aid
            super().log_message(fmt, *args)

    def send_response(self, code, message=None):  # noqa: D102
        self._last_status = int(code)
        super().send_response(code, message)

    def _send(
        self,
        status: int,
        body: bytes = b"",
        content_type: str = "application/octet-stream",
        *,
        content_length: Optional[int] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header(
            "Content-Length",
            str(len(body) if content_length is None else content_length),
        )
        self.end_headers()
        if body:
            self.wfile.write(body)

    def _send_json(self, status: int, payload: Dict[str, object]) -> None:
        self._send(
            status, json.dumps(payload).encode() + b"\n", "application/json"
        )

    def _block_key(self) -> Optional[str]:
        """The key addressed by the request path, or ``None`` + a 400."""
        key = self.path[len(_BLOCKS_PREFIX):]
        if not _KEY_RE.match(key):
            self._send_json(400, {"error": f"malformed block key {key[:80]!r}"})
            return None
        return key

    # ------------------------------------------------------------------
    @_traced("GET")
    def do_GET(self):  # noqa: N802 - http.server API
        if self.path == "/v1/ping":
            self._send_json(200, {"ok": True, "schema": SCHEMA_VERSION})
            return
        if self.path == "/v1/stats":
            self._send_json(200, self.server.stats_payload())
            return
        if self.path == "/metrics":
            self._send(
                200,
                self.server.metrics_exposition().encode(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
            return
        if not self.path.startswith(_BLOCKS_PREFIX):
            self._send_json(404, {"error": "unknown route"})
            return
        key = self._block_key()
        if key is None:
            return
        blob = self.server.store.backend.get_blob(key)
        if blob is None:
            self.server.count("misses")
            self._send_json(404, {"error": "unknown block"})
            return
        self.server.count("gets", bytes_out=len(blob))
        self._send(200, blob)

    @_traced("HEAD")
    def do_HEAD(self):  # noqa: N802
        if not self.path.startswith(_BLOCKS_PREFIX):
            self._send(404)
            return
        # HEAD responses carry no body, so the malformed-key rejection
        # must stay body-less too (a JSON 400 would desync keep-alive).
        key = self.path[len(_BLOCKS_PREFIX):]
        if not _KEY_RE.match(key):
            self._send(400)
            return
        try:
            size = self.server.store.backend.path_for(key).stat().st_size
        except OSError:
            self._send(404)
            return
        self._send(200, content_length=size)

    @_traced("PUT")
    def do_PUT(self):  # noqa: N802
        if not self.path.startswith(_BLOCKS_PREFIX):
            self._send_json(404, {"error": "unknown route"})
            return
        key = self._block_key()
        if key is None:
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._send_json(400, {"error": "missing Content-Length"})
            return
        if not 0 < length <= MAX_BLOB_BYTES:
            self._send_json(400, {"error": f"implausible blob size {length}"})
            return
        blob = self.rfile.read(length)
        if len(blob) != length:
            self._send_json(400, {"error": "short body"})
            return
        try:
            verify_blob(blob, key=key)
        except ValueError as exc:
            self.server.count("rejected_puts")
            self._send_json(400, {"error": f"rejected damaged blob: {exc}"})
            return
        self.server.store.backend.put_blob(key, blob)
        self.server.count("puts", bytes_in=len(blob))
        self._send_json(201, {"ok": True})

    @_traced("DELETE")
    def do_DELETE(self):  # noqa: N802
        if not self.path.startswith(_BLOCKS_PREFIX):
            self._send_json(404, {"error": "unknown route"})
            return
        key = self._block_key()
        if key is None:
            return
        if self.server.store.backend.delete(key):
            self.server.count("deletes")
            self._send_json(200, {"ok": True})
        else:
            self._send_json(404, {"error": "unknown block"})

    @_traced("POST")
    def do_POST(self):  # noqa: N802
        if self.path != _BLOCKS_PREFIX + "contains":
            self._send_json(404, {"error": "unknown route"})
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
            request = json.loads(self.rfile.read(length).decode())
            keys = list(request["keys"])
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            self._send_json(400, {"error": "want JSON {'keys': [...]}"})
            return
        backend = self.server.store.backend
        present = [
            key
            for key in keys
            if isinstance(key, str) and _KEY_RE.match(key) and backend.contains(key)
        ]
        self._send_json(200, {"present": present})


class CacheServer(ThreadingHTTPServer):
    """One block store directory served over HTTP.

    Binds on construction (``port=0`` picks an ephemeral port — read it
    back from :attr:`port`); call :meth:`serve_forever` to serve, or use
    :meth:`start` for a daemon background thread in tests.
    """

    daemon_threads = True

    def __init__(
        self,
        root: Union[str, Path],
        host: str = "127.0.0.1",
        port: int = 8091,
        *,
        verbose: bool = False,
        trace_log: Optional[Union[str, Path]] = None,
    ) -> None:
        self.store = BlockStore(root)
        self.verbose = verbose
        self.counters: Dict[str, int] = {
            "gets": 0,
            "misses": 0,
            "puts": 0,
            "rejected_puts": 0,
            "deletes": 0,
            "bytes_in": 0,
            "bytes_out": 0,
        }
        self._counter_lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        # Request trace log: span events for X-Repro-Trace requests,
        # appended as JSON lines (stitched by ``repro report trace``).
        self.trace_log = Path(trace_log) if trace_log else None
        self._trace_lock = threading.Lock()
        registry = get_registry()
        self.metric_latency = registry.histogram(
            "repro_cache_server_request_seconds",
            "Cache-server request latency by verb.",
            labelnames=("verb",),
            buckets=LATENCY_BUCKETS,
        )
        self.metric_inflight = registry.gauge(
            "repro_cache_server_inflight",
            "Cache-server requests currently being handled.",
        )
        self.metric_requests = registry.counter(
            "repro_cache_server_requests_total",
            "Cache-server request outcomes, mirroring /v1/stats counters.",
            labelnames=("kind",),
        )
        self.metric_bytes = registry.counter(
            "repro_cache_server_bytes_total",
            "Cache-server payload bytes by direction.",
            labelnames=("direction",),
        )
        self.metric_blocks = registry.gauge(
            "repro_cache_server_blocks",
            "Blocks resident in the served store.",
        )
        self.metric_stored_bytes = registry.gauge(
            "repro_cache_server_stored_bytes",
            "Bytes resident in the served store.",
        )
        super().__init__((host, int(port)), _CacheRequestHandler)

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def count(self, name: str, *, bytes_in: int = 0, bytes_out: int = 0) -> None:
        with self._counter_lock:
            self.counters[name] += 1
            self.counters["bytes_in"] += bytes_in
            self.counters["bytes_out"] += bytes_out
        # Mirrored on the registry so a /metrics scrape and /v1/stats
        # (hence ``repro cache stats --remote-cache``) can never drift.
        self.metric_requests.inc(kind=name)
        if bytes_in:
            self.metric_bytes.inc(bytes_in, direction="in")
        if bytes_out:
            self.metric_bytes.inc(bytes_out, direction="out")

    def metrics_exposition(self) -> str:
        """The ``/metrics`` body: refresh store gauges, then render."""
        stats = self.store.stats()
        self.metric_blocks.set(stats.n_blocks)
        self.metric_stored_bytes.set(stats.total_bytes)
        return get_registry().render_prometheus()

    def log_trace_span(
        self,
        verb: str,
        path: str,
        start: float,
        seconds: float,
        status: int,
        trace_id: str,
    ) -> None:
        """Append one request span event to the trace log (if any)."""
        if self.trace_log is None:
            return
        from repro.telemetry.manifest import RUN_SCHEMA_VERSION

        name = f"cacheserver.{verb}"
        event = {
            "type": "span",
            "schema": RUN_SCHEMA_VERSION,
            "path": name,
            "name": name,
            "depth": 0,
            "leaf": True,
            "start": start,
            "seconds": seconds,
            "attrs": {
                "trace_id": trace_id,
                "proc": "cache-server",
                "http_path": path,
                "status": status,
            },
            "counters": {},
            "pid": os.getpid(),
        }
        line = json.dumps(event, sort_keys=True) + "\n"
        with self._trace_lock:
            with self.trace_log.open("a") as fh:
                fh.write(line)

    def stats_payload(self) -> Dict[str, object]:
        stats = self.store.stats()
        with self._counter_lock:
            counters = dict(self.counters)
        return {
            "root": str(self.store.root),
            "url": self.url,
            "schema": SCHEMA_VERSION,
            "n_blocks": stats.n_blocks,
            "total_bytes": stats.total_bytes,
            "fanout_blocks": stats.fanout_blocks,
            "counters": counters,
        }

    # ------------------------------------------------------------------
    def start(self) -> "CacheServer":
        """Serve from a daemon thread (tests, embedded use)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.serve_forever, name="repro-cache-serve", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self.shutdown()
            self._thread.join(timeout=10)
            self._thread = None
        self.server_close()

    def __enter__(self) -> "CacheServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_cache(
    root: Union[str, Path],
    host: str = "127.0.0.1",
    port: int = 8091,
    *,
    verbose: bool = False,
    trace_log: Optional[Union[str, Path]] = None,
) -> CacheServer:
    """Bind a :class:`CacheServer` (without serving yet)."""
    return CacheServer(root, host, port, verbose=verbose, trace_log=trace_log)
