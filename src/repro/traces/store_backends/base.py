"""Blob-level transport contract for the block store.

The block store separates two concerns that PR 4 originally fused:

* **format** — headers, payload digests, memmap views, schema
  versioning.  That knowledge lives in :mod:`repro.traces.blockstore`
  and nowhere else.
* **transport** — moving opaque serialized block files between a key
  and a place.  That is this module's :class:`StoreBackend` contract:
  ``get/put/contains/delete`` over *bytes*, nothing more.

Keeping the contract blob-level is what makes remote tiers safe: a
backend can be a directory, an HTTP artifact server, or anything else
that stores bytes faithfully, and the store re-verifies the payload
digest on ingest regardless — a backend can lose blocks (that is a
miss) but can never change results.

:class:`LocalDirBackend` is the extraction of today's on-disk layout,
byte-for-byte: two-level fan-out directories (``root/<key[:2]>/<key>.
blk``), unique ``.tmp-`` temp files published with ``os.replace``, and
an ``fsync`` before the rename.  Stores written before this refactor
read back unchanged.
"""

from __future__ import annotations

import os
import re
import uuid
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, Protocol, Union, runtime_checkable

from repro.errors import CacheError

#: Prefix of in-flight temp files (never visible to readers).
TMP_PREFIX = ".tmp-"

#: Suffix of published block files.
BLOCK_SUFFIX = ".blk"

#: Block keys are SHA-256 hex digests — anything else is refused at the
#: transport boundary, which keeps path construction and URL routing
#: injection-proof by construction.
_KEY_RE = re.compile(r"[0-9a-f]{64}\Z")


def validate_key(key: str) -> str:
    """Check that ``key`` is a well-formed block key; returns it."""
    if not isinstance(key, str) or not _KEY_RE.match(key):
        raise CacheError(f"malformed block key {key!r} (want 64 hex chars)")
    return key


@runtime_checkable
class StoreBackend(Protocol):
    """Where serialized block files live.

    Implementations move opaque blobs; they never parse headers or
    verify digests (the store does that on every read and on every
    remote ingest).  ``get_blob`` returns ``None`` for an absent key;
    ``delete`` reports whether a blob was actually removed.
    """

    def get_blob(self, key: str) -> Optional[bytes]: ...

    def put_blob(self, key: str, blob: bytes) -> None: ...

    def contains(self, key: str) -> bool: ...

    def delete(self, key: str) -> bool: ...

    def describe(self) -> str: ...


def contains_many(backend: StoreBackend, keys: Iterable[str]) -> Dict[str, bool]:
    """Presence of many keys, batched where the backend supports it.

    The HTTP backend answers a whole campaign's worth of keys in one
    round trip; anything else degrades to per-key ``contains``.
    """
    keys = list(keys)
    batched = getattr(backend, "contains_many", None)
    if callable(batched):
        return batched(keys)
    return {key: backend.contains(key) for key in keys}


class LocalDirBackend:
    """Today's on-disk layout, behind the :class:`StoreBackend` seam."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LocalDirBackend({str(self.root)!r})"

    def describe(self) -> str:
        return f"dir:{self.root}"

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Where a block with this key lives (two-level fan-out)."""
        return self.root / key[:2] / (key + BLOCK_SUFFIX)

    def contains(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def get_blob(self, key: str) -> Optional[bytes]:
        try:
            return self.path_for(key).read_bytes()
        except FileNotFoundError:
            return None

    def put_blob(self, key: str, blob: bytes) -> Path:
        """Publish a blob atomically; returns its path.

        Safe under concurrent writers: the blob is fully written to a
        unique temp file in the target directory, flushed, and then
        renamed over the final path.  Readers never observe a partial
        block, and a crash leaves at worst an orphaned temp file.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f"{TMP_PREFIX}{key[:16]}-{os.getpid()}-{uuid.uuid4().hex}"
        try:
            with open(tmp, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return path

    def delete(self, key: str) -> bool:
        try:
            self.path_for(key).unlink()
        except FileNotFoundError:
            return False
        except OSError:
            return False
        return True

    # ------------------------------------------------------------------
    def iter_paths(self) -> Iterator[Path]:
        """Published block files, in deterministic (sorted) order."""
        if not self.root.is_dir():
            return
        for sub in sorted(self.root.iterdir()):
            if not sub.is_dir():
                continue
            for path in sorted(sub.iterdir()):
                if path.name.endswith(BLOCK_SUFFIX) and not path.name.startswith(
                    TMP_PREFIX
                ):
                    yield path

    def clear(self) -> int:
        """Delete every block (and orphaned temp file); returns count."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for sub in sorted(self.root.iterdir()):
            if not sub.is_dir():
                continue
            for path in sorted(sub.iterdir()):
                if path.name.endswith(BLOCK_SUFFIX) or path.name.startswith(
                    TMP_PREFIX
                ):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        continue
            try:
                sub.rmdir()
            except OSError:
                pass
        return removed
