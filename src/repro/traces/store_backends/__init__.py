"""Pluggable storage tiers for the block store.

``base`` holds the blob-level :class:`StoreBackend` contract and the
local-directory transport; ``http``/``server`` speak the ``repro cache
serve`` wire protocol; ``tiered`` layers a remote tier under the local
one with read-through ingest and write-behind publish.

Everything except :mod:`~repro.traces.store_backends.base` is imported
lazily: :mod:`repro.traces.blockstore` imports ``base`` at module load,
and the richer submodules import ``blockstore`` back (for the block
file format), so eager re-exports here would form a cycle.
"""

from __future__ import annotations

from repro.traces.store_backends.base import (
    BLOCK_SUFFIX,
    TMP_PREFIX,
    LocalDirBackend,
    StoreBackend,
    contains_many,
    validate_key,
)

__all__ = [
    "BLOCK_SUFFIX",
    "TMP_PREFIX",
    "LocalDirBackend",
    "StoreBackend",
    "contains_many",
    "validate_key",
    "HTTPBackend",
    "TieredStore",
    "default_local_tier",
    "CacheServer",
    "serve_cache",
]

_LAZY = {
    "HTTPBackend": "repro.traces.store_backends.http",
    "TieredStore": "repro.traces.store_backends.tiered",
    "default_local_tier": "repro.traces.store_backends.tiered",
    "CacheServer": "repro.traces.store_backends.server",
    "serve_cache": "repro.traces.store_backends.server",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
