"""HTTP transport for the block store (client side).

Speaks the minimal content-addressed protocol of ``repro cache serve``
(:mod:`repro.traces.store_backends.server`):

========  =========================  ==========================================
method    path                       meaning
========  =========================  ==========================================
GET       ``/v1/blocks/<key>``       blob bytes, or 404
HEAD      ``/v1/blocks/<key>``       presence probe (Content-Length, no body)
PUT       ``/v1/blocks/<key>``       publish (server re-verifies digest; 400
                                     rejects damaged or misaddressed blobs)
DELETE    ``/v1/blocks/<key>``       remove; 404 when absent
POST      ``/v1/blocks/contains``    ``{"keys": [...]}`` → ``{"present": [...]}``
GET       ``/v1/stats``              server store stats + request counters
GET       ``/v1/ping``               liveness
GET       ``/metrics``               Prometheus text exposition
========  =========================  ==========================================

Every request carries an ``X-Repro-Trace`` header when a trace scope is
active (:mod:`repro.telemetry.tracing`), and the client records request
latency / retry / error metrics on the process-wide registry.

Everything is stdlib ``http.client`` — no third-party dependency.  One
keep-alive connection is held per thread (the tiered store's prefetch
and publish threads each get their own); transient transport failures
are retried once with a fresh connection before surfacing as
:class:`~repro.errors.RemoteCacheError`.  Instances pickle as their
configuration, so a backend rides into engine worker processes the
same way a :class:`~repro.traces.blockstore.BlockStore` does.
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from repro.errors import CacheError, RemoteCacheError
from repro.telemetry.metrics import LATENCY_BUCKETS, get_registry
from repro.telemetry.tracing import TRACE_HEADER, current_trace_id
from repro.traces.store_backends.base import validate_key

_BLOCKS = "/v1/blocks"


def _client_metrics():
    """Request-level client metrics on the process-wide registry."""
    registry = get_registry()
    return (
        registry.histogram(
            "repro_http_request_seconds",
            "Remote-cache client request latency by method.",
            labelnames=("method",),
            buckets=LATENCY_BUCKETS,
        ),
        registry.counter(
            "repro_http_retries_total",
            "Remote-cache client transport retries.",
        ),
        registry.counter(
            "repro_http_errors_total",
            "Remote-cache client requests that exhausted their retries.",
        ),
    )

#: Errors that mean "the wire failed", not "the server answered no" —
#: retried with a fresh connection, then reported as RemoteCacheError.
_TRANSPORT_ERRORS = (
    http.client.HTTPException,
    ConnectionError,
    socket.timeout,
    socket.gaierror,
    OSError,
)


class HTTPBackend:
    """A :class:`~repro.traces.store_backends.base.StoreBackend` over
    the ``repro cache serve`` protocol.

    Parameters
    ----------
    base_url:
        ``http://host:port`` (or ``https://``).  A path prefix is
        allowed and prepended to every route.
    timeout:
        Per-request socket timeout in seconds.
    retries:
        How many times a request is retried on transport failure (each
        retry reconnects; the protocol is idempotent so replays are
        safe).
    """

    def __init__(self, base_url: str, timeout: float = 10.0, retries: int = 1) -> None:
        parts = urlsplit(str(base_url))
        if parts.scheme not in ("http", "https") or not parts.netloc:
            raise CacheError(
                f"remote cache URL {base_url!r} must look like http://host:port"
            )
        self.base_url = str(base_url).rstrip("/")
        self.timeout = float(timeout)
        self.retries = int(retries)
        self._scheme = parts.scheme
        self._netloc = parts.netloc
        self._prefix = parts.path.rstrip("/")
        self._local = threading.local()

    # One keep-alive connection per thread; pickling drops them.
    def __getstate__(self):
        return {
            "base_url": self.base_url,
            "timeout": self.timeout,
            "retries": self.retries,
        }

    def __setstate__(self, state):
        self.__init__(**state)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HTTPBackend({self.base_url!r})"

    def describe(self) -> str:
        return self.base_url

    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        cls = (
            http.client.HTTPSConnection
            if self._scheme == "https"
            else http.client.HTTPConnection
        )
        return cls(self._netloc, timeout=self.timeout)

    def _close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            try:
                conn.close()
            except Exception:
                pass
        self._local.conn = None

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        *,
        read_body: bool = True,
    ) -> Tuple[int, bytes]:
        """One round trip; retries transport failures on a fresh
        connection (stale keep-alive sockets fail exactly this way)."""
        url = self._prefix + path
        latency, retries, errors = _client_metrics()
        trace_id = current_trace_id()
        last: Optional[Exception] = None
        t0 = time.perf_counter()
        for attempt in range(self.retries + 1):
            if attempt:
                retries.inc()
            conn = getattr(self._local, "conn", None)
            if conn is not None and getattr(self._local, "pid", None) != os.getpid():
                # Forked child: the keep-alive socket is shared with the
                # parent process, and speaking on it would interleave two
                # processes' requests on one TCP stream (corrupted reads,
                # stalls).  Abandon the inherited connection unused — the
                # parent still owns the socket — and dial our own.
                conn = None
                self._local.conn = None
            if conn is None:
                conn = self._connect()
                self._local.conn = conn
                self._local.pid = os.getpid()
            try:
                headers = {"Content-Length": str(len(body))} if body is not None else {}
                if trace_id:
                    headers[TRACE_HEADER] = trace_id
                conn.request(method, url, body=body, headers=headers)
                resp = conn.getresponse()
                data = resp.read() if read_body else b""
                if not read_body:
                    # HEAD: nothing to drain, but the header block must
                    # be consumed before the connection is reused.
                    resp.read()
                latency.observe(time.perf_counter() - t0, method=method)
                return resp.status, data
            except _TRANSPORT_ERRORS as exc:
                last = exc
                self._close()
                if attempt >= self.retries:
                    break
        errors.inc()
        latency.observe(time.perf_counter() - t0, method=method)
        raise RemoteCacheError(
            f"remote cache {self.base_url} unreachable "
            f"({method} {path}): {last}"
        ) from last

    # ------------------------------------------------------------------
    def get_blob(self, key: str) -> Optional[bytes]:
        status, data = self._request("GET", f"{_BLOCKS}/{validate_key(key)}")
        if status == 200:
            return data
        if status == 404:
            return None
        raise RemoteCacheError(
            f"remote cache {self.base_url} answered {status} to GET {key[:16]}…"
        )

    def put_blob(self, key: str, blob: bytes) -> None:
        status, data = self._request(
            "PUT", f"{_BLOCKS}/{validate_key(key)}", body=bytes(blob)
        )
        if status in (200, 201):
            return
        detail = data.decode(errors="replace").strip()
        raise RemoteCacheError(
            f"remote cache {self.base_url} refused PUT {key[:16]}… "
            f"({status}): {detail or 'no detail'}"
        )

    def contains(self, key: str) -> bool:
        status, _ = self._request(
            "HEAD", f"{_BLOCKS}/{validate_key(key)}", read_body=False
        )
        if status == 200:
            return True
        if status == 404:
            return False
        raise RemoteCacheError(
            f"remote cache {self.base_url} answered {status} to HEAD {key[:16]}…"
        )

    def contains_many(self, keys: Sequence[str]) -> Dict[str, bool]:
        """Presence of many keys in one round trip."""
        keys = [validate_key(k) for k in keys]
        if not keys:
            return {}
        body = json.dumps({"keys": keys}).encode()
        status, data = self._request("POST", f"{_BLOCKS}/contains", body=body)
        if status != 200:
            # An older server without the batch route still answers the
            # per-key probes.
            return {key: self.contains(key) for key in keys}
        try:
            present = set(json.loads(data.decode())["present"])
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            raise RemoteCacheError(
                f"remote cache {self.base_url} sent a malformed contains "
                f"response: {exc}"
            ) from None
        return {key: key in present for key in keys}

    def delete(self, key: str) -> bool:
        status, _ = self._request("DELETE", f"{_BLOCKS}/{validate_key(key)}")
        if status == 200:
            return True
        if status == 404:
            return False
        raise RemoteCacheError(
            f"remote cache {self.base_url} answered {status} to DELETE {key[:16]}…"
        )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """The server's store stats and request counters."""
        status, data = self._request("GET", "/v1/stats")
        if status != 200:
            raise RemoteCacheError(
                f"remote cache {self.base_url} answered {status} to GET /v1/stats"
            )
        try:
            return dict(json.loads(data.decode()))
        except (ValueError, UnicodeDecodeError) as exc:
            raise RemoteCacheError(
                f"remote cache {self.base_url} sent malformed stats: {exc}"
            ) from None

    def ping(self) -> bool:
        """Whether the server is up (False instead of raising)."""
        try:
            status, _ = self._request("GET", "/v1/ping")
        except RemoteCacheError:
            return False
        return status == 200
