"""Content-addressed on-disk cache of acquisition blocks.

Every trace block this library produces is a pure function of
``(acquisition config, RNG lineage, block shape, code schema)`` — the
engine's whole determinism story rests on that.  The block store turns
the purity into reuse: a block is written once under a canonical
content address and every later campaign that would regenerate it —
a re-run of the same figure, a different experiment sharing a campaign
prefix, a second process on the same machine — memory-maps the stored
bytes instead of re-paying the sensor-pipeline cost.

Design points:

* **Content addressing** (:func:`block_key`): the key is the SHA-256 of
  a canonical JSON payload combining the acquisition *cache token* (the
  physical configuration, see ``AESTraceAcquisition.cache_token``), the
  RNG lineage of the shard's :class:`~numpy.random.SeedSequence`
  (entropy + spawn key — exactly what pins the stream), the block
  geometry and :data:`SCHEMA_VERSION`.  The acquisition kernel is
  deliberately *not* part of the key: kernels are bit-identical by
  construction, so a block acquired by one serves all.
* **Atomic writes** (:meth:`BlockStore.put`): blocks are serialized to
  a temp file in the same directory and published with
  :func:`os.replace`.  Concurrent writers (the parallel engine's
  workers, or two engines sharing one store) race benignly: both write
  identical bytes and the losing rename simply overwrites them.
* **Integrity** : the payload region carries a SHA-256 digest in the
  header.  A truncated or corrupted block never produces wrong data —
  :meth:`BlockStore.get` emits a :class:`~repro.errors.
  CacheIntegrityWarning`, deletes the bad file and reports a miss, so
  the engine re-acquires the shard.
* **Zero-copy reads** (:class:`CachedBlock`): arrays come back as
  read-only :class:`numpy.memmap` views over the block file, 64-byte
  aligned.  ``Engine.stream_attack`` feeds accumulator updates straight
  from those views; the trace matrix is never copied into anonymous
  memory, and page cache is shared between concurrent readers.
* **Eviction** (:meth:`BlockStore.prune`): optional LRU size cap.
  Reads touch the block's mtime, so recently-used blocks survive.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import struct
import uuid
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.errors import CacheError, CacheIntegrityWarning

#: Bump when the meaning of cached bytes changes (kernel semantics, RNG
#: consumption order, array layout).  Part of every block key, so a
#: schema change invalidates the whole store without touching it.
SCHEMA_VERSION = 1

#: Leading bytes of every block file.
MAGIC = b"RPROBLK\x01"

#: Alignment of the header end and of each array's payload offset.
ALIGN = 64

_HEADER_LEN_FMT = "<Q"
_TMP_PREFIX = ".tmp-"
_BLOCK_SUFFIX = ".blk"


# ----------------------------------------------------------------------
# Canonical keys
# ----------------------------------------------------------------------


def _canonical(obj):
    """Normalize a payload fragment into canonically-JSON-able form.

    Sorts mappings, converts numpy scalars/arrays and dataclasses, and
    renders floats via ``repr`` round-trip (`json` already does).  The
    result feeds ``json.dumps(sort_keys=True)``, so two payloads that
    compare equal hash equal regardless of construction order.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _canonical(dataclasses.asdict(obj))
    if isinstance(obj, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return _canonical(obj.tolist())
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (bytes, bytearray)):
        return hashlib.sha256(bytes(obj)).hexdigest()
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise CacheError(
        f"cannot canonicalize {type(obj).__name__!r} into a cache key; "
        "pass plain scalars, sequences, mappings or numpy values"
    )


def canonical_payload(payload: Mapping) -> str:
    """The canonical JSON text a block key is hashed from."""
    return json.dumps(_canonical(payload), sort_keys=True, separators=(",", ":"))


def block_key(payload: Mapping) -> str:
    """SHA-256 content address of a canonical key payload."""
    return hashlib.sha256(canonical_payload(payload).encode()).hexdigest()


def seed_lineage(seq: np.random.SeedSequence) -> Dict[str, object]:
    """The identity of a :class:`~numpy.random.SeedSequence` stream.

    ``(entropy, spawn_key, pool_size)`` pins every number the sequence
    will ever produce — two sequences with equal lineage generate
    identical streams in any process.  This is the "kernel-invariant RNG
    lineage" part of a block key: the engine spawns one child per shard,
    so the child's spawn key encodes (root seed, shard index) exactly.
    """
    entropy = seq.entropy
    if isinstance(entropy, (list, tuple, np.ndarray)):
        entropy = [int(e) for e in entropy]
    elif entropy is not None:
        entropy = int(entropy)
    return {
        "entropy": str(entropy),
        "spawn_key": [int(k) for k in seq.spawn_key],
        "pool_size": int(seq.pool_size),
    }


# ----------------------------------------------------------------------
# Block file format
# ----------------------------------------------------------------------


def _pad(n: int) -> int:
    return (ALIGN - n % ALIGN) % ALIGN


def _serialize(key: str, arrays: Mapping[str, np.ndarray], meta: Optional[Mapping]) -> bytes:
    """One block file: magic, length-prefixed JSON header, aligned
    payload of raw C-order array bytes, digest over the payload."""
    specs: List[Dict[str, object]] = []
    payload_parts: List[bytes] = []
    offset = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        data = array.tobytes()
        specs.append(
            {
                "name": str(name),
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": len(data),
            }
        )
        payload_parts.append(data)
        pad = _pad(len(data))
        payload_parts.append(b"\x00" * pad)
        offset += len(data) + pad
    payload = b"".join(payload_parts)
    header = {
        "schema": SCHEMA_VERSION,
        "key": key,
        "arrays": specs,
        "payload_nbytes": len(payload),
        "digest": hashlib.sha256(payload).hexdigest(),
        "meta": _canonical(meta) if meta is not None else {},
    }
    header_bytes = json.dumps(header, sort_keys=True).encode()
    prefix_len = len(MAGIC) + struct.calcsize(_HEADER_LEN_FMT) + len(header_bytes)
    head = MAGIC + struct.pack(_HEADER_LEN_FMT, len(header_bytes)) + header_bytes
    return head + b"\x00" * _pad(prefix_len) + payload


def peek_block_meta(path) -> Dict[str, object]:
    """The ``meta`` mapping of a block file, from its header alone.

    Reads only the length-prefixed JSON header — no payload bytes, no
    digest work — so sweeping a whole store (as :meth:`BlockStore.
    stats` does to count fan-out blocks) costs one small read per
    block.  Raises ``ValueError`` on anything that is not a well-formed
    block header.
    """
    path = Path(path)
    size = path.stat().st_size
    with open(path, "rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise ValueError("bad magic (not a block file or truncated)")
        (header_len,) = struct.unpack(
            _HEADER_LEN_FMT, fh.read(struct.calcsize(_HEADER_LEN_FMT))
        )
        if header_len <= 0 or header_len > size:
            raise ValueError("implausible header length")
        try:
            header = json.loads(fh.read(header_len).decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"unreadable header: {exc}") from None
    meta = header.get("meta", {})
    if not isinstance(meta, dict):
        raise ValueError("block meta is not a mapping")
    return meta


@dataclass
class CachedBlock:
    """One block read back from the store.

    ``arrays`` maps names to read-only :class:`numpy.memmap` views over
    the block file — no bytes are copied until a consumer touches them,
    and touching them fills the shared page cache, not private memory.
    """

    key: str
    path: Path
    arrays: Dict[str, np.ndarray]
    nbytes: int
    meta: Dict[str, object] = field(default_factory=dict)

    def materialize(self) -> Dict[str, np.ndarray]:
        """Private in-memory copies of every array (rarely needed —
        slices of the memmaps feed accumulators directly)."""
        return {name: np.array(a) for name, a in self.arrays.items()}


@dataclass
class CacheCounters:
    """Session-local cache activity (one store instance, one process)."""

    hits: int = 0
    misses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    puts: int = 0
    evictions: int = 0
    integrity_failures: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Flat JSON-friendly view."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "puts": self.puts,
            "evictions": self.evictions,
            "integrity_failures": self.integrity_failures,
        }

    def telemetry_counters(self) -> Dict[str, float]:
        """Numeric counter view for telemetry span attachment.

        The engine's per-shard ``cache`` spans carry hit/miss bytes
        already; this is the whole-store view (e.g. one process's
        session), suitable for ``SpanRecord.counters``.
        """
        return {
            key: float(value)
            for key, value in self.as_dict().items()
            if isinstance(value, (int, float))
        }


@dataclass(frozen=True)
class StoreStats:
    """On-disk state of a store directory."""

    n_blocks: int
    total_bytes: int
    #: Blocks published by fan-out campaigns (sub-blocks of a
    #: multi-sensor shard, tagged via their ``fanout`` meta entry).
    #: They are addressed by the same keys single-sensor campaigns use;
    #: the tag only records who published first.
    fanout_blocks: int = 0

    def summary(self) -> str:
        """One human-readable line."""
        line = f"{self.n_blocks} blocks, {self.total_bytes / 1e6:.1f} MB"
        if self.fanout_blocks:
            line += f", {self.fanout_blocks} from fan-out"
        return line


@dataclass
class VerifyReport:
    """Outcome of a full-store integrity sweep."""

    n_ok: int = 0
    bad: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every block passed."""
        return not self.bad


class BlockStore:
    """A content-addressed block cache rooted at one directory.

    Parameters
    ----------
    root:
        Cache directory (created on first use).  Safe to share between
        concurrent processes: writes are atomic renames and readers
        only ever see complete published files.
    max_bytes:
        Optional LRU size cap.  After every write the store evicts
        least-recently-used blocks until the total is back under the
        cap.  ``None`` (default) never evicts.
    verify_reads:
        Verify the payload digest on every :meth:`get` (default).  The
        check costs one hash pass over bytes the consumer was about to
        read anyway — negligible next to regenerating the block.
    """

    def __init__(
        self,
        root: Union[str, Path],
        max_bytes: Optional[int] = None,
        verify_reads: bool = True,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise CacheError("max_bytes must be positive (or None for no cap)")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.verify_reads = verify_reads
        self.counters = CacheCounters()

    # A store pickles as its configuration: worker processes reopen the
    # directory and keep their own counters (reported back to the
    # parent via ShardMetrics, not via this object).
    def __getstate__(self):
        return {
            "root": str(self.root),
            "max_bytes": self.max_bytes,
            "verify_reads": self.verify_reads,
        }

    def __setstate__(self, state):
        self.__init__(**state)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = f", max_bytes={self.max_bytes}" if self.max_bytes else ""
        return f"BlockStore({str(self.root)!r}{cap})"

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Where a block with this key lives (two-level fan-out)."""
        return self.root / key[:2] / (key + _BLOCK_SUFFIX)

    def _iter_block_paths(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        for sub in sorted(self.root.iterdir()):
            if not sub.is_dir():
                continue
            for path in sorted(sub.iterdir()):
                if path.name.endswith(_BLOCK_SUFFIX) and not path.name.startswith(
                    _TMP_PREFIX
                ):
                    yield path

    def contains(self, key: str) -> bool:
        """Whether a block is published (no integrity check)."""
        return self.path_for(key).is_file()

    # ------------------------------------------------------------------
    def put(
        self,
        key: str,
        arrays: Mapping[str, np.ndarray],
        meta: Optional[Mapping] = None,
    ) -> Path:
        """Publish a block atomically; returns its path.

        Safe under concurrent writers: the block is fully written to a
        unique temp file in the target directory, flushed, and then
        renamed over the final path.  Readers never observe a partial
        block, and a crash leaves at worst an orphaned temp file (swept
        by :meth:`clear`/:meth:`prune`).
        """
        if not arrays:
            raise CacheError("a block needs at least one array")
        path = self.path_for(key)
        blob = _serialize(key, arrays, meta)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f"{_TMP_PREFIX}{key[:16]}-{os.getpid()}-{uuid.uuid4().hex}"
        try:
            with open(tmp, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        self.counters.puts += 1
        self.counters.bytes_written += len(blob)
        if self.max_bytes is not None:
            self.prune(self.max_bytes)
        return path

    def get(self, key: str, touch: bool = True) -> Optional[CachedBlock]:
        """Look a block up; ``None`` on miss *or* on a damaged block.

        A damaged block (truncated, bad header, digest mismatch) emits
        a :class:`~repro.errors.CacheIntegrityWarning`, is deleted, and
        counts as a miss — the caller re-acquires and re-publishes, so
        corruption can never change results.
        """
        path = self.path_for(key)
        try:
            block = self._read(key, path)
        except FileNotFoundError:
            self.counters.misses += 1
            return None
        except (OSError, ValueError) as exc:
            self._quarantine(path, str(exc))
            self.counters.misses += 1
            return None
        if touch:
            try:
                os.utime(path)
            except OSError:
                pass
        self.counters.hits += 1
        self.counters.bytes_read += block.nbytes
        return block

    def _read(self, key: str, path: Path) -> CachedBlock:
        size = path.stat().st_size
        with open(path, "rb") as fh:
            magic = fh.read(len(MAGIC))
            if magic != MAGIC:
                raise ValueError("bad magic (not a block file or truncated)")
            (header_len,) = struct.unpack(
                _HEADER_LEN_FMT, fh.read(struct.calcsize(_HEADER_LEN_FMT))
            )
            if header_len <= 0 or header_len > size:
                raise ValueError("implausible header length")
            try:
                header = json.loads(fh.read(header_len).decode())
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ValueError(f"unreadable header: {exc}") from None
        if header.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"schema {header.get('schema')!r} != current {SCHEMA_VERSION}"
            )
        if header.get("key") != key:
            raise ValueError("stored key does not match its address")
        prefix = len(MAGIC) + struct.calcsize(_HEADER_LEN_FMT) + header_len
        payload_start = prefix + _pad(prefix)
        payload_nbytes = int(header["payload_nbytes"])
        if payload_start + payload_nbytes > size:
            raise ValueError(
                f"truncated payload: file has {size - payload_start} of "
                f"{payload_nbytes} bytes"
            )
        raw = np.memmap(path, dtype=np.uint8, mode="r", offset=payload_start,
                        shape=(payload_nbytes,))
        if self.verify_reads:
            digest = hashlib.sha256(raw).hexdigest()
            if digest != header["digest"]:
                raise ValueError("payload digest mismatch")
        arrays: Dict[str, np.ndarray] = {}
        for spec in header["arrays"]:
            dtype = np.dtype(spec["dtype"])
            shape = tuple(int(s) for s in spec["shape"])
            nbytes = int(spec["nbytes"])
            if int(np.prod(shape, dtype=np.int64)) * dtype.itemsize != nbytes:
                raise ValueError(f"array {spec['name']!r} shape/nbytes mismatch")
            offset = int(spec["offset"])
            if offset + nbytes > payload_nbytes:
                raise ValueError(f"array {spec['name']!r} exceeds the payload")
            view = raw[offset : offset + nbytes].view(dtype).reshape(shape)
            arrays[spec["name"]] = view
        return CachedBlock(
            key=key,
            path=path,
            arrays=arrays,
            nbytes=payload_nbytes,
            meta=dict(header.get("meta", {})),
        )

    def _quarantine(self, path: Path, reason: str) -> None:
        self.counters.integrity_failures += 1
        warnings.warn(
            f"discarding damaged cache block {path.name}: {reason} "
            "(the shard will be re-acquired)",
            CacheIntegrityWarning,
            stacklevel=3,
        )
        try:
            path.unlink(missing_ok=True)
        except OSError:
            pass

    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        """Current on-disk block count, total size, and how many blocks
        were published by fan-out campaigns (a header-only peek per
        block — the payloads are never touched)."""
        n = 0
        total = 0
        fanout = 0
        for path in self._iter_block_paths():
            try:
                total += path.stat().st_size
                n += 1
            except OSError:
                continue
            try:
                if "fanout" in peek_block_meta(path):
                    fanout += 1
            except (OSError, ValueError):
                pass
        return StoreStats(n_blocks=n, total_bytes=total, fanout_blocks=fanout)

    def verify(self, delete_bad: bool = False) -> VerifyReport:
        """Re-check every block's digest; optionally delete failures."""
        report = VerifyReport()
        for path in self._iter_block_paths():
            key = path.name[: -len(_BLOCK_SUFFIX)]
            try:
                self._read(key, path)
            except (OSError, ValueError) as exc:
                report.bad.append(f"{path.name}: {exc}")
                if delete_bad:
                    path.unlink(missing_ok=True)
            else:
                report.n_ok += 1
        return report

    def clear(self) -> int:
        """Delete every block (and orphaned temp file); returns count."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for sub in sorted(self.root.iterdir()):
            if not sub.is_dir():
                continue
            for path in sorted(sub.iterdir()):
                if path.name.endswith(_BLOCK_SUFFIX) or path.name.startswith(
                    _TMP_PREFIX
                ):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        continue
            try:
                sub.rmdir()
            except OSError:
                pass
        return removed

    def prune(self, max_bytes: int) -> int:
        """Evict least-recently-used blocks until under ``max_bytes``.

        Reads touch mtime (:meth:`get`), so eviction order is true LRU.
        Concurrent-delete races are benign (missing files are skipped).
        Returns the number of blocks evicted.
        """
        if max_bytes < 0:
            raise CacheError("max_bytes must be non-negative")
        entries: List[Tuple[float, int, Path]] = []
        total = 0
        for path in self._iter_block_paths():
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, path))
            total += st.st_size
        entries.sort(key=lambda e: e[0])
        evicted = 0
        for _mtime, nbytes, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= nbytes
            evicted += 1
        self.counters.evictions += evicted
        return evicted


def open_store(
    spec: Union[None, str, Path, BlockStore],
    max_bytes: Optional[int] = None,
) -> Optional[BlockStore]:
    """Normalize a cache argument: ``None`` stays off, a path becomes a
    :class:`BlockStore`, a store passes through unchanged."""
    if spec is None:
        return None
    if isinstance(spec, BlockStore):
        return spec
    return BlockStore(spec, max_bytes=max_bytes)
