"""Content-addressed on-disk cache of acquisition blocks.

Every trace block this library produces is a pure function of
``(acquisition config, RNG lineage, block shape, code schema)`` — the
engine's whole determinism story rests on that.  The block store turns
the purity into reuse: a block is written once under a canonical
content address and every later campaign that would regenerate it —
a re-run of the same figure, a different experiment sharing a campaign
prefix, a second process on the same machine — memory-maps the stored
bytes instead of re-paying the sensor-pipeline cost.

Design points:

* **Content addressing** (:func:`block_key`): the key is the SHA-256 of
  a canonical JSON payload combining the acquisition *cache token* (the
  physical configuration, see ``AESTraceAcquisition.cache_token``), the
  RNG lineage of the shard's :class:`~numpy.random.SeedSequence`
  (entropy + spawn key — exactly what pins the stream), the block
  geometry and :data:`SCHEMA_VERSION`.  The acquisition kernel is
  deliberately *not* part of the key: kernels are bit-identical by
  construction, so a block acquired by one serves all.
* **Atomic writes** (:meth:`BlockStore.put`): blocks are serialized to
  a temp file in the same directory and published with
  :func:`os.replace`.  Concurrent writers (the parallel engine's
  workers, or two engines sharing one store) race benignly: both write
  identical bytes and the losing rename simply overwrites them.
* **Integrity** : the payload region carries a SHA-256 digest in the
  header.  A truncated or corrupted block never produces wrong data —
  :meth:`BlockStore.get` emits a :class:`~repro.errors.
  CacheIntegrityWarning`, deletes the bad file and reports a miss, so
  the engine re-acquires the shard.
* **Zero-copy reads** (:class:`CachedBlock`): arrays come back as
  read-only :class:`numpy.memmap` views over the block file, 64-byte
  aligned.  ``Engine.stream_attack`` feeds accumulator updates straight
  from those views; the trace matrix is never copied into anonymous
  memory, and page cache is shared between concurrent readers.
* **Eviction** (:meth:`BlockStore.prune`): optional LRU size cap.
  Reads touch the block's mtime, so recently-used blocks survive.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import struct
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.errors import CacheError, CacheIntegrityWarning
from repro.traces.store_backends.base import (
    BLOCK_SUFFIX,
    TMP_PREFIX,
    LocalDirBackend,
)

#: Bump when the meaning of cached bytes changes (kernel semantics, RNG
#: consumption order, array layout).  Part of every block key, so a
#: schema change invalidates the whole store without touching it.
SCHEMA_VERSION = 1

#: Leading bytes of every block file.
MAGIC = b"RPROBLK\x01"

#: Alignment of the header end and of each array's payload offset.
ALIGN = 64

_HEADER_LEN_FMT = "<Q"
_TMP_PREFIX = TMP_PREFIX
_BLOCK_SUFFIX = BLOCK_SUFFIX


# ----------------------------------------------------------------------
# Canonical keys
# ----------------------------------------------------------------------


def _canonical(obj):
    """Normalize a payload fragment into canonically-JSON-able form.

    Sorts mappings, converts numpy scalars/arrays and dataclasses, and
    renders floats via ``repr`` round-trip (`json` already does).  The
    result feeds ``json.dumps(sort_keys=True)``, so two payloads that
    compare equal hash equal regardless of construction order.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _canonical(dataclasses.asdict(obj))
    if isinstance(obj, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return _canonical(obj.tolist())
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (bytes, bytearray)):
        return hashlib.sha256(bytes(obj)).hexdigest()
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise CacheError(
        f"cannot canonicalize {type(obj).__name__!r} into a cache key; "
        "pass plain scalars, sequences, mappings or numpy values"
    )


def canonical_payload(payload: Mapping) -> str:
    """The canonical JSON text a block key is hashed from."""
    return json.dumps(_canonical(payload), sort_keys=True, separators=(",", ":"))


def block_key(payload: Mapping) -> str:
    """SHA-256 content address of a canonical key payload."""
    return hashlib.sha256(canonical_payload(payload).encode()).hexdigest()


def seed_lineage(seq: np.random.SeedSequence) -> Dict[str, object]:
    """The identity of a :class:`~numpy.random.SeedSequence` stream.

    ``(entropy, spawn_key, pool_size)`` pins every number the sequence
    will ever produce — two sequences with equal lineage generate
    identical streams in any process.  This is the "kernel-invariant RNG
    lineage" part of a block key: the engine spawns one child per shard,
    so the child's spawn key encodes (root seed, shard index) exactly.
    """
    entropy = seq.entropy
    if isinstance(entropy, (list, tuple, np.ndarray)):
        entropy = [int(e) for e in entropy]
    elif entropy is not None:
        entropy = int(entropy)
    return {
        "entropy": str(entropy),
        "spawn_key": [int(k) for k in seq.spawn_key],
        "pool_size": int(seq.pool_size),
    }


# ----------------------------------------------------------------------
# Block file format
# ----------------------------------------------------------------------


def _pad(n: int) -> int:
    return (ALIGN - n % ALIGN) % ALIGN


def _serialize(key: str, arrays: Mapping[str, np.ndarray], meta: Optional[Mapping]) -> bytes:
    """One block file: magic, length-prefixed JSON header, aligned
    payload of raw C-order array bytes, digest over the payload."""
    specs: List[Dict[str, object]] = []
    payload_parts: List[bytes] = []
    offset = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        data = array.tobytes()
        specs.append(
            {
                "name": str(name),
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": len(data),
            }
        )
        payload_parts.append(data)
        pad = _pad(len(data))
        payload_parts.append(b"\x00" * pad)
        offset += len(data) + pad
    payload = b"".join(payload_parts)
    header = {
        "schema": SCHEMA_VERSION,
        "key": key,
        "arrays": specs,
        "payload_nbytes": len(payload),
        "digest": hashlib.sha256(payload).hexdigest(),
        "meta": _canonical(meta) if meta is not None else {},
    }
    header_bytes = json.dumps(header, sort_keys=True).encode()
    prefix_len = len(MAGIC) + struct.calcsize(_HEADER_LEN_FMT) + len(header_bytes)
    head = MAGIC + struct.pack(_HEADER_LEN_FMT, len(header_bytes)) + header_bytes
    return head + b"\x00" * _pad(prefix_len) + payload


def peek_block_meta(path) -> Dict[str, object]:
    """The ``meta`` mapping of a block file, from its header alone.

    Reads only the length-prefixed JSON header — no payload bytes, no
    digest work — so sweeping a whole store (as :meth:`BlockStore.
    stats` does to count fan-out blocks) costs one small read per
    block.  Raises ``ValueError`` on anything that is not a well-formed
    block header.
    """
    path = Path(path)
    size = path.stat().st_size
    with open(path, "rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise ValueError("bad magic (not a block file or truncated)")
        (header_len,) = struct.unpack(
            _HEADER_LEN_FMT, fh.read(struct.calcsize(_HEADER_LEN_FMT))
        )
        if header_len <= 0 or header_len > size:
            raise ValueError("implausible header length")
        try:
            header = json.loads(fh.read(header_len).decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"unreadable header: {exc}") from None
    meta = header.get("meta", {})
    if not isinstance(meta, dict):
        raise ValueError("block meta is not a mapping")
    return meta


def read_blob_header(blob: bytes) -> Tuple[Dict[str, object], int]:
    """Parse a serialized block's header from its bytes.

    Returns ``(header, payload_start)``.  Raises ``ValueError`` on
    anything that is not a well-formed current-schema block.
    """
    size = len(blob)
    fixed = len(MAGIC) + struct.calcsize(_HEADER_LEN_FMT)
    if size < fixed or blob[: len(MAGIC)] != MAGIC:
        raise ValueError("bad magic (not a block file or truncated)")
    (header_len,) = struct.unpack(
        _HEADER_LEN_FMT, blob[len(MAGIC): fixed]
    )
    if header_len <= 0 or fixed + header_len > size:
        raise ValueError("implausible header length")
    try:
        header = json.loads(blob[fixed: fixed + header_len].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable header: {exc}") from None
    if not isinstance(header, dict):
        raise ValueError("block header is not a mapping")
    if header.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"schema {header.get('schema')!r} != current {SCHEMA_VERSION}"
        )
    prefix = fixed + header_len
    return header, prefix + _pad(prefix)


def verify_blob(blob: bytes, key: Optional[str] = None) -> Dict[str, object]:
    """Fully validate a serialized block's bytes; returns its header.

    The whole trust story of remote tiers rests here: both the server
    (on PUT) and the tiered store (on remote ingest) run every blob
    through this before publishing it locally, so bytes that crossed a
    wire can be lost or rejected but can never change results.  Checks
    magic, header well-formedness, schema, the stored key against
    ``key`` (the address the blob claims to live at), payload length
    and the payload SHA-256.  Raises ``ValueError`` on any mismatch.
    """
    header, payload_start = read_blob_header(blob)
    if key is not None and header.get("key") != key:
        raise ValueError("stored key does not match its address")
    payload_nbytes = int(header["payload_nbytes"])
    if payload_start + payload_nbytes > len(blob):
        raise ValueError(
            f"truncated payload: blob has {len(blob) - payload_start} of "
            f"{payload_nbytes} bytes"
        )
    payload = blob[payload_start: payload_start + payload_nbytes]
    if hashlib.sha256(payload).hexdigest() != header.get("digest"):
        raise ValueError("payload digest mismatch")
    return header


@dataclass
class CachedBlock:
    """One block read back from the store.

    ``arrays`` maps names to read-only :class:`numpy.memmap` views over
    the block file — no bytes are copied until a consumer touches them,
    and touching them fills the shared page cache, not private memory.
    """

    key: str
    path: Path
    arrays: Dict[str, np.ndarray]
    nbytes: int
    meta: Dict[str, object] = field(default_factory=dict)

    def materialize(self) -> Dict[str, np.ndarray]:
        """Private in-memory copies of every array (rarely needed —
        slices of the memmaps feed accumulators directly)."""
        return {name: np.array(a) for name, a in self.arrays.items()}


@dataclass
class CacheCounters:
    """Session-local cache activity (one store instance, one process)."""

    hits: int = 0
    misses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    puts: int = 0
    evictions: int = 0
    integrity_failures: int = 0
    #: Misses on a key the caller had just seen via ``contains()`` — a
    #: block pruned/evicted in the race window.  Benign (the shard is
    #: re-acquired), but worth counting: a busy ``expired`` stream means
    #: the size cap is too tight for the working set.
    expired: int = 0
    # --- remote tier (all zero on a purely local store) ---------------
    remote_hits: int = 0
    remote_misses: int = 0
    remote_bytes_read: int = 0
    remote_bytes_written: int = 0
    remote_puts: int = 0
    #: Write-behind publishes skipped because the remote already had
    #: the block (another host in the fleet won the race).
    remote_publish_skipped: int = 0
    #: Write-behind publishes dropped because the local block was
    #: evicted before the publisher got to it.
    remote_publish_dropped: int = 0
    remote_errors: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Flat JSON-friendly view."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "puts": self.puts,
            "evictions": self.evictions,
            "integrity_failures": self.integrity_failures,
            "expired": self.expired,
            "remote_hits": self.remote_hits,
            "remote_misses": self.remote_misses,
            "remote_bytes_read": self.remote_bytes_read,
            "remote_bytes_written": self.remote_bytes_written,
            "remote_puts": self.remote_puts,
            "remote_publish_skipped": self.remote_publish_skipped,
            "remote_publish_dropped": self.remote_publish_dropped,
            "remote_errors": self.remote_errors,
        }

    def telemetry_counters(self) -> Dict[str, float]:
        """Numeric counter view for telemetry span attachment.

        The engine's per-shard ``cache`` spans carry hit/miss bytes
        already; this is the whole-store view (e.g. one process's
        session), suitable for ``SpanRecord.counters``.
        """
        return {
            key: float(value)
            for key, value in self.as_dict().items()
            if isinstance(value, (int, float))
        }


@dataclass(frozen=True)
class StoreStats:
    """On-disk state of a store directory."""

    n_blocks: int
    total_bytes: int
    #: Blocks published by fan-out campaigns (sub-blocks of a
    #: multi-sensor shard, tagged via their ``fanout`` meta entry).
    #: They are addressed by the same keys single-sensor campaigns use;
    #: the tag only records who published first.
    fanout_blocks: int = 0

    def summary(self) -> str:
        """One human-readable line."""
        line = f"{self.n_blocks} blocks, {self.total_bytes / 1e6:.1f} MB"
        if self.fanout_blocks:
            line += f", {self.fanout_blocks} from fan-out"
        return line


@dataclass
class VerifyReport:
    """Outcome of a full-store integrity sweep."""

    n_ok: int = 0
    bad: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every block passed."""
        return not self.bad


class BlockStore:
    """A content-addressed block cache rooted at one directory.

    Parameters
    ----------
    root:
        Cache directory (created on first use).  Safe to share between
        concurrent processes: writes are atomic renames and readers
        only ever see complete published files.
    max_bytes:
        Optional LRU size cap.  After every write the store evicts
        least-recently-used blocks until the total is back under the
        cap.  ``None`` (default) never evicts.
    verify_reads:
        Verify the payload digest on every :meth:`get` (default).  The
        check costs one hash pass over bytes the consumer was about to
        read anyway — negligible next to regenerating the block.
    """

    def __init__(
        self,
        root: Union[str, Path],
        max_bytes: Optional[int] = None,
        verify_reads: bool = True,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise CacheError("max_bytes must be positive (or None for no cap)")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.verify_reads = verify_reads
        self.backend = LocalDirBackend(self.root)
        self.counters = CacheCounters()

    # A store pickles as its configuration: worker processes reopen the
    # directory and keep their own counters (reported back to the
    # parent via ShardMetrics, not via this object).
    def __getstate__(self):
        return {
            "root": str(self.root),
            "max_bytes": self.max_bytes,
            "verify_reads": self.verify_reads,
        }

    def __setstate__(self, state):
        self.__init__(**state)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = f", max_bytes={self.max_bytes}" if self.max_bytes else ""
        return f"BlockStore({str(self.root)!r}{cap})"

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Where a block with this key lives (two-level fan-out)."""
        return self.backend.path_for(key)

    def _iter_block_paths(self) -> Iterator[Path]:
        return self.backend.iter_paths()

    def contains(self, key: str) -> bool:
        """Whether a block is published (no integrity check)."""
        return self.backend.contains(key)

    def tier_of(self, key: str) -> Optional[str]:
        """Which tier would answer a :meth:`get` (``"local"``/``None``).

        Tiered stores add ``"remote"``; schedulers use this to sort
        shards into cold/warm classes without reading any payloads.
        """
        return "local" if self.backend.contains(key) else None

    def tiers_of(self, keys) -> Dict[str, Optional[str]]:
        """:meth:`tier_of` for many keys (tiered stores batch this)."""
        return {key: self.tier_of(key) for key in keys}

    def for_worker(self) -> "BlockStore":
        """The store an engine worker process should be handed.

        A plain store ships as-is; tiered stores return a read-through
        view with write-behind publishing disabled, so all remote
        publishing funnels through the parent process (one publisher,
        one flush point)."""
        return self

    def flush(self, timeout: Optional[float] = None) -> None:
        """Wait for background publishing to drain (no-op here)."""

    def close(self) -> None:
        """Release background resources (no-op here)."""

    # ------------------------------------------------------------------
    def put(
        self,
        key: str,
        arrays: Mapping[str, np.ndarray],
        meta: Optional[Mapping] = None,
    ) -> Path:
        """Publish a block atomically; returns its path.

        Safe under concurrent writers: the block is fully written to a
        unique temp file in the target directory, flushed, and then
        renamed over the final path (see :meth:`LocalDirBackend.
        put_blob`).  Readers never observe a partial block, and a crash
        leaves at worst an orphaned temp file (swept by :meth:`clear`/
        :meth:`prune`).

        Every published block carries provenance in its meta — the
        producing host, pid, backend and schema version — so a fleet
        sharing one remote tier can always answer "who computed this".
        Provenance lives in the header only; it is never part of the
        key or the payload digest.
        """
        if not arrays:
            raise CacheError("a block needs at least one array")
        meta = dict(meta) if meta is not None else {}
        meta.setdefault("provenance", self.provenance())
        blob = _serialize(key, arrays, meta)
        path = self.backend.put_blob(key, blob)
        self.counters.puts += 1
        self.counters.bytes_written += len(blob)
        if self.max_bytes is not None:
            self.prune(self.max_bytes)
        return path

    def provenance(self) -> Dict[str, object]:
        """Who/where a block published by this store comes from."""
        return {
            "host": platform.node() or "unknown",
            "pid": os.getpid(),
            "backend": self.backend.describe(),
            "schema": SCHEMA_VERSION,
        }

    def get(
        self, key: str, touch: bool = True, expect: bool = False
    ) -> Optional[CachedBlock]:
        """Look a block up; ``None`` on miss *or* on a damaged block.

        A damaged block (truncated, bad header, digest mismatch) emits
        a :class:`~repro.errors.CacheIntegrityWarning`, is deleted, and
        counts as a miss — the caller re-acquires and re-publishes, so
        corruption can never change results.

        ``expect=True`` marks a lookup the caller has reason to believe
        will hit (it just saw ``contains()`` succeed).  A miss is then
        additionally counted as ``expired`` — the pruned-between-check-
        and-read race — but still behaves exactly like any other miss.
        """
        block = self._local_get(key, touch)
        if block is None:
            self._miss(expect)
            return None
        self.counters.hits += 1
        self.counters.bytes_read += block.nbytes
        return block

    def _local_get(self, key: str, touch: bool) -> Optional[CachedBlock]:
        """Read from the local tier only; ``None`` on (benign) miss."""
        path = self.backend.path_for(key)
        try:
            block = self._read(key, path)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            self._quarantine(path, str(exc))
            return None
        if touch:
            try:
                os.utime(path)
            except OSError:
                pass
        return block

    def _miss(self, expect: bool) -> None:
        self.counters.misses += 1
        if expect:
            self.counters.expired += 1

    def _read(self, key: str, path: Path) -> CachedBlock:
        size = path.stat().st_size
        with open(path, "rb") as fh:
            magic = fh.read(len(MAGIC))
            if magic != MAGIC:
                raise ValueError("bad magic (not a block file or truncated)")
            (header_len,) = struct.unpack(
                _HEADER_LEN_FMT, fh.read(struct.calcsize(_HEADER_LEN_FMT))
            )
            if header_len <= 0 or header_len > size:
                raise ValueError("implausible header length")
            try:
                header = json.loads(fh.read(header_len).decode())
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ValueError(f"unreadable header: {exc}") from None
        if header.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"schema {header.get('schema')!r} != current {SCHEMA_VERSION}"
            )
        if header.get("key") != key:
            raise ValueError("stored key does not match its address")
        prefix = len(MAGIC) + struct.calcsize(_HEADER_LEN_FMT) + header_len
        payload_start = prefix + _pad(prefix)
        payload_nbytes = int(header["payload_nbytes"])
        if payload_start + payload_nbytes > size:
            raise ValueError(
                f"truncated payload: file has {size - payload_start} of "
                f"{payload_nbytes} bytes"
            )
        raw = np.memmap(path, dtype=np.uint8, mode="r", offset=payload_start,
                        shape=(payload_nbytes,))
        if self.verify_reads:
            digest = hashlib.sha256(raw).hexdigest()
            if digest != header["digest"]:
                raise ValueError("payload digest mismatch")
        arrays: Dict[str, np.ndarray] = {}
        for spec in header["arrays"]:
            dtype = np.dtype(spec["dtype"])
            shape = tuple(int(s) for s in spec["shape"])
            nbytes = int(spec["nbytes"])
            if int(np.prod(shape, dtype=np.int64)) * dtype.itemsize != nbytes:
                raise ValueError(f"array {spec['name']!r} shape/nbytes mismatch")
            offset = int(spec["offset"])
            if offset + nbytes > payload_nbytes:
                raise ValueError(f"array {spec['name']!r} exceeds the payload")
            view = raw[offset : offset + nbytes].view(dtype).reshape(shape)
            arrays[spec["name"]] = view
        return CachedBlock(
            key=key,
            path=path,
            arrays=arrays,
            nbytes=payload_nbytes,
            meta=dict(header.get("meta", {})),
        )

    def _quarantine(self, path: Path, reason: str) -> None:
        self.counters.integrity_failures += 1
        warnings.warn(
            f"discarding damaged cache block {path.name}: {reason} "
            "(the shard will be re-acquired)",
            CacheIntegrityWarning,
            stacklevel=3,
        )
        try:
            path.unlink(missing_ok=True)
        except OSError:
            pass

    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        """Current on-disk block count, total size, and how many blocks
        were published by fan-out campaigns (a header-only peek per
        block — the payloads are never touched)."""
        n = 0
        total = 0
        fanout = 0
        for path in self._iter_block_paths():
            try:
                total += path.stat().st_size
                n += 1
            except OSError:
                continue
            try:
                if "fanout" in peek_block_meta(path):
                    fanout += 1
            except (OSError, ValueError):
                pass
        return StoreStats(n_blocks=n, total_bytes=total, fanout_blocks=fanout)

    def verify(self, delete_bad: bool = False) -> VerifyReport:
        """Re-check every block's digest; optionally delete failures."""
        report = VerifyReport()
        for path in self._iter_block_paths():
            key = path.name[: -len(_BLOCK_SUFFIX)]
            try:
                self._read(key, path)
            except (OSError, ValueError) as exc:
                report.bad.append(f"{path.name}: {exc}")
                if delete_bad:
                    path.unlink(missing_ok=True)
            else:
                report.n_ok += 1
        return report

    def clear(self) -> int:
        """Delete every block (and orphaned temp file); returns count."""
        return self.backend.clear()

    def prune(self, max_bytes: int) -> int:
        """Evict least-recently-used blocks until under ``max_bytes``.

        Reads touch mtime (:meth:`get`), so eviction order is true LRU.
        Concurrent-delete races are benign (missing files are skipped).
        Returns the number of blocks evicted.
        """
        if max_bytes < 0:
            raise CacheError("max_bytes must be non-negative")
        entries: List[Tuple[float, int, Path]] = []
        total = 0
        for path in self._iter_block_paths():
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, path))
            total += st.st_size
        entries.sort(key=lambda e: e[0])
        evicted = 0
        for _mtime, nbytes, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= nbytes
            evicted += 1
        self.counters.evictions += evicted
        return evicted


def open_store(
    spec: Union[None, str, Path, BlockStore],
    max_bytes: Optional[int] = None,
    remote: Optional[str] = None,
) -> Optional[BlockStore]:
    """Normalize a cache argument: ``None`` stays off, a path becomes a
    :class:`BlockStore`, a store passes through unchanged.

    With ``remote`` (a ``repro cache serve`` URL) a path becomes a
    :class:`~repro.traces.store_backends.tiered.TieredStore` layered
    over that server; ``spec=None`` then gets a per-user local tier
    under the system temp directory (read-through needs *somewhere* to
    memmap from).
    """
    if isinstance(spec, BlockStore):
        return spec
    if remote:
        from repro.traces.store_backends.tiered import (
            TieredStore,
            default_local_tier,
        )

        root = Path(spec) if spec is not None else default_local_tier()
        return TieredStore(root, remote=remote, max_bytes=max_bytes)
    if spec is None:
        return None
    return BlockStore(spec, max_bytes=max_bytes)
