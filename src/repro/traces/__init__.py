"""Trace capture: the attacker-side acquisition harness and storage.

In the paper, traces are LeakyDSP readouts streamed over UART, one
record per sensor clock during an AES encryption, triggered by the
start-encryption signal.  :class:`~repro.traces.store.TraceSet` is the
container (with npz persistence) and
:class:`~repro.traces.acquisition.AESTraceAcquisition` the harness that
drives the victim, runs the PDN and sensor models and collects the
readout matrix.
"""

from repro.traces.acquisition import (
    AcquisitionSpec,
    AESTraceAcquisition,
    MultiSensorAcquisition,
    characterize_readouts,
)
from repro.traces.blockstore import (
    SCHEMA_VERSION,
    BlockStore,
    CacheCounters,
    CachedBlock,
    StoreStats,
    VerifyReport,
    block_key,
    open_store,
    seed_lineage,
    verify_blob,
)
from repro.traces.store import TraceSet
from repro.traces.store_backends import (
    HTTPBackend,
    LocalDirBackend,
    StoreBackend,
    TieredStore,
)
from repro.traces.transport import AcquisitionPlan, CaptureBuffer, UartLink

__all__ = [
    "AcquisitionSpec",
    "AESTraceAcquisition",
    "MultiSensorAcquisition",
    "characterize_readouts",
    "TraceSet",
    "AcquisitionPlan",
    "CaptureBuffer",
    "UartLink",
    "SCHEMA_VERSION",
    "BlockStore",
    "CacheCounters",
    "CachedBlock",
    "StoreStats",
    "VerifyReport",
    "block_key",
    "open_store",
    "seed_lineage",
    "verify_blob",
    "HTTPBackend",
    "LocalDirBackend",
    "StoreBackend",
    "TieredStore",
]
