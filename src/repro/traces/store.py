"""Trace-set container with npz persistence."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.errors import AcquisitionError


@dataclass
class TraceSet:
    """A batch of side-channel traces plus the data needed to attack
    them.

    Attributes
    ----------
    traces:
        ``(n, n_samples)`` sensor readouts (int16).
    plaintexts, ciphertexts:
        ``(n, 16)`` uint8 blocks.
    key:
        The (ground-truth) 16-byte key, kept for evaluation only — the
        attack itself never reads it.
    metadata:
        Free-form acquisition parameters (clock rates, placement names,
        sensor type, ...).
    """

    traces: np.ndarray
    plaintexts: np.ndarray
    ciphertexts: np.ndarray
    key: np.ndarray
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.traces = np.asarray(self.traces)
        self.plaintexts = np.asarray(self.plaintexts, dtype=np.uint8)
        self.ciphertexts = np.asarray(self.ciphertexts, dtype=np.uint8)
        self.key = np.asarray(self.key, dtype=np.uint8)
        n = self.traces.shape[0]
        if self.plaintexts.shape != (n, 16) or self.ciphertexts.shape != (n, 16):
            raise AcquisitionError(
                "plaintexts/ciphertexts must be (n, 16) matching the trace count"
            )
        if self.key.shape != (16,):
            raise AcquisitionError("key must be 16 bytes")

    def __len__(self) -> int:
        return self.traces.shape[0]

    @property
    def n_samples(self) -> int:
        """Samples per trace."""
        return self.traces.shape[1]

    def head(self, n: int) -> "TraceSet":
        """The first ``n`` traces as a new (view-backed) TraceSet."""
        if not 0 < n <= len(self):
            raise AcquisitionError(f"cannot take {n} of {len(self)} traces")
        return TraceSet(
            self.traces[:n],
            self.plaintexts[:n],
            self.ciphertexts[:n],
            self.key,
            dict(self.metadata),
        )

    def extend(self, other: "TraceSet") -> "TraceSet":
        """Concatenate two trace sets collected under the same key."""
        if not np.array_equal(self.key, other.key):
            raise AcquisitionError("cannot merge trace sets with different keys")
        if self.n_samples != other.n_samples:
            raise AcquisitionError("cannot merge trace sets with different lengths")
        return TraceSet(
            np.concatenate([self.traces, other.traces]),
            np.concatenate([self.plaintexts, other.plaintexts]),
            np.concatenate([self.ciphertexts, other.ciphertexts]),
            self.key,
            dict(self.metadata),
        )

    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path], *, compress: bool = True) -> None:
        """Persist to an ``.npz`` file.

        ``compress=False`` writes a stored (uncompressed) archive:
        int16 sensor readouts deflate slowly for only a modest size
        win, so campaign-sized sets save several times faster
        uncompressed.  The default stays compressed; :meth:`load` reads
        either transparently.
        """
        writer = np.savez_compressed if compress else np.savez
        writer(
            Path(path),
            traces=self.traces,
            plaintexts=self.plaintexts,
            ciphertexts=self.ciphertexts,
            key=self.key,
            metadata=json.dumps(self.metadata),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TraceSet":
        """Load a trace set saved by :meth:`save`."""
        with np.load(Path(path), allow_pickle=False) as data:
            return cls(
                traces=data["traces"],
                plaintexts=data["plaintexts"],
                ciphertexts=data["ciphertexts"],
                key=data["key"],
                metadata=json.loads(str(data["metadata"])),
            )
