"""Acquisition harnesses: drive victims, run the PDN, sample sensors.

Two harnesses:

* :class:`AESTraceAcquisition` — the key-extraction campaign (Section
  IV-B): per encryption, the AES core's per-cycle switching current is
  injected at its placement, propagated through the PDN surrogate, and
  the sensor's readouts over the encryption window form one trace.
* :func:`characterize_readouts` — the characterization workloads
  (Section IV-A): sample a sensor under a steady power-virus activity
  level.

One deliberate substitution: the paper chains plaintexts (each
ciphertext becomes the next plaintext) to avoid repetition, which would
serialize trace generation.  We draw plaintexts uniformly at random
instead — statistically equivalent for CPA (uniform, non-repeating with
overwhelming probability) — while still modelling the chained protocol's
register history (the pre-load register value of the model is the trace's
own plaintext, exactly as chaining would leave it).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.config import DEFAULT_CONSTANTS, PhysicalConstants, RngLike, make_rng
from repro.core.sensor import VoltageSensor
from repro.errors import AcquisitionError
from repro.pdn.coupling import CouplingModel, LoadSite
from repro.pdn.noise import NoiseModel
from repro.timing.sampling import ClockSpec
from repro.traces.store import TraceSet
from repro.victims.aes import AES128, AESHardwareModel
from repro.victims.power_virus import PowerVirusBank


class AESTraceAcquisition:
    """Collect AES power traces through an on-chip sensor.

    Parameters
    ----------
    sensor:
        A placed, calibrated sensor.
    coupling:
        The PDN surrogate for the shared device.
    hw_model:
        The AES hardware/power model (clocks and currents).
    aes_position:
        Die position of the AES core (its placement centroid).
    noise:
        Voltage noise model; defaults to white noise at the constants'
        RMS level.
    """

    def __init__(
        self,
        sensor: VoltageSensor,
        coupling: CouplingModel,
        hw_model: AESHardwareModel,
        aes_position: Tuple[float, float],
        noise: Optional[NoiseModel] = None,
    ) -> None:
        self.sensor = sensor
        self.coupling = coupling
        self.hw_model = hw_model
        self.aes_position = aes_position
        constants = sensor.constants
        # White noise only by default: campaign-scale drift is a
        # separate, explicitly-opted-in effect (pass a NoiseModel with
        # drift_rms set) so that trace-count results stay comparable
        # across AES frequencies, whose traces differ in length.
        self.noise = noise or NoiseModel(
            white_rms=constants.voltage_noise_rms, drift_rms=0.0
        )

    def collect(
        self,
        n_traces: int,
        key,
        rng: RngLike = None,
        chunk_size: int = 4096,
        n_samples: Optional[int] = None,
    ) -> TraceSet:
        """Run ``n_traces`` encryptions and record the sensor readouts.

        Traces are generated in chunks to bound memory; every chunk is
        fully vectorized (AES, PDN filter, sensor sampling).
        """
        if n_traces <= 0:
            raise AcquisitionError("n_traces must be positive")
        rng = make_rng(rng)
        aes = AES128(key)
        sensor_pos = self.sensor.require_position()
        kappa = self.coupling.kappa(sensor_pos, self.aes_position)
        dt = self.hw_model.sensor_clock.period
        if n_samples is None:
            n_samples = self.hw_model.samples_per_block + 2 * self.hw_model.samples_per_cycle

        traces = np.empty((n_traces, n_samples), dtype=np.int16)
        pts = np.empty((n_traces, 16), dtype=np.uint8)
        cts = np.empty((n_traces, 16), dtype=np.uint8)

        done = 0
        while done < n_traces:
            m = min(chunk_size, n_traces - done)
            chunk_pts = rng.integers(0, 256, size=(m, 16), dtype=np.uint8)
            hd = self.hw_model.cycle_hamming_distances(aes, chunk_pts)
            currents = self.hw_model.current_waveform(hd, n_samples=n_samples)
            droop = kappa * self.coupling.filter_currents(currents, dt)
            volts = self.sensor.constants.v_nominal - droop
            volts += self.noise.sample(m * n_samples, rng).reshape(m, n_samples)
            readouts = self.sensor.sample_readouts(volts, rng=rng, method="normal")
            traces[done : done + m] = readouts.astype(np.int16)
            pts[done : done + m] = chunk_pts
            cts[done : done + m] = aes.encrypt_blocks(chunk_pts)
            done += m

        return TraceSet(
            traces=traces,
            plaintexts=pts,
            ciphertexts=cts,
            key=aes.key,
            metadata={
                "sensor": self.sensor.name,
                "sensor_type": type(self.sensor).__name__,
                "sensor_position": list(map(float, sensor_pos)),
                "aes_position": list(map(float, self.aes_position)),
                "aes_frequency_hz": self.hw_model.aes_clock.frequency,
                "sensor_frequency_hz": self.hw_model.sensor_clock.frequency,
                "samples_per_cycle": self.hw_model.samples_per_cycle,
            },
        )


def characterize_readouts(
    sensor: VoltageSensor,
    coupling: CouplingModel,
    virus: PowerVirusBank,
    active_groups: int,
    n_readouts: int = 2000,
    noise: Optional[NoiseModel] = None,
    rng: RngLike = None,
) -> np.ndarray:
    """Sample a sensor under a steady power-virus activity level
    (the Fig. 3 / Fig. 4 workload).

    Parameters
    ----------
    sensor:
        Placed, calibrated sensor.
    coupling:
        PDN surrogate.
    virus:
        Placed power-virus bank.
    active_groups:
        How many of the bank's groups are enabled (0 .. n_groups).
    n_readouts:
        Readouts to sample (the paper uses 2,000 per level).

    Returns
    -------
    numpy.ndarray
        ``(n_readouts,)`` integer readouts.
    """
    if not 0 <= active_groups <= virus.n_groups:
        raise AcquisitionError(
            f"active_groups must be 0..{virus.n_groups}, got {active_groups}"
        )
    rng = make_rng(rng)
    sensor_pos = sensor.require_position()
    enables = np.zeros(virus.n_groups)
    enables[:active_groups] = 1.0
    droop = virus.droop_at(coupling, sensor_pos, enables)
    constants = sensor.constants
    noise = noise or NoiseModel(white_rms=constants.voltage_noise_rms)
    volts = constants.v_nominal - droop + noise.sample(n_readouts, rng)
    return sensor.sample_readouts(volts, rng=rng, method="exact")
