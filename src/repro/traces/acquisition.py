"""Acquisition harnesses: drive victims, run the PDN, sample sensors.

Three harnesses:

* :class:`AESTraceAcquisition` — the key-extraction campaign (Section
  IV-B): per encryption, the AES core's per-cycle switching current is
  injected at its placement, propagated through the PDN surrogate, and
  the sensor's readouts over the encryption window form one trace.
  Canonically constructed from an :class:`AcquisitionSpec`.
* :class:`MultiSensorAcquisition` — N sensors/placements observing the
  *same* victim campaign: one shared AES+PDN pass per block fans out to
  per-sensor trace sets, bit-identical to N independent campaigns.
* :func:`characterize_readouts` — the characterization workloads
  (Section IV-A): sample a sensor under a steady power-virus activity
  level.

Both harnesses expose a *block* primitive (:meth:`AESTraceAcquisition.
acquire_block`, :func:`characterize_block`) that computes one fully
vectorized batch from an explicit RNG.  The serial entry points iterate
blocks against a single generator; the process-pool engine in
:mod:`repro.runtime` runs one block per shard against per-shard spawned
generators — which is what makes parallel acquisition deterministic.

One deliberate substitution: the paper chains plaintexts (each
ciphertext becomes the next plaintext) to avoid repetition, which would
serialize trace generation.  We draw plaintexts uniformly at random
instead — statistically equivalent for CPA (uniform, non-repeating with
overwhelming probability) — while still modelling the chained protocol's
register history (the pre-load register value of the model is the trace's
own plaintext, exactly as chaining would leave it).
"""

from __future__ import annotations

import numbers
import warnings
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.streaming import validate_chunk_size
from repro.config import DEFAULT_CONSTANTS, PhysicalConstants, RngLike, make_rng
from repro.core.sensor import SamplingMethod, VoltageSensor
from repro.errors import AcquisitionError
from repro.kernels import AcquisitionKernel, StageProfile, get_kernel
from repro.pdn.coupling import CouplingModel, LoadSite
from repro.pdn.noise import NoiseModel
from repro.timing.sampling import ClockSpec
from repro.traces.store import TraceSet
from repro.victims.aes import AES128, AESHardwareModel
from repro.victims.power_virus import PowerVirusBank


def _warn_timings_dict() -> None:
    """Deprecation warning for the pre-span ``timings`` dict plumbing."""
    warnings.warn(
        "the timings={} dict argument is deprecated; pass a "
        "repro.kernels.StageProfile via profile= instead — stages are "
        "recorded as telemetry spans (repro.telemetry) with bytes, "
        "items and timeline position",
        DeprecationWarning,
        stacklevel=3,
    )


def _coerce_group_count(active_groups, n_groups: int) -> int:
    """Validate an ``active_groups`` argument into a plain int.

    Accepts ints, numpy integers and integer-valued floats (a common
    by-product of sweeping levels with ``numpy.linspace``); rejects
    fractional values and anything outside ``0..n_groups``.
    """
    if isinstance(active_groups, bool):
        raise AcquisitionError(
            f"active_groups must be an integer, got {active_groups!r}"
        )
    if isinstance(active_groups, numbers.Integral):
        count = int(active_groups)
    elif isinstance(active_groups, numbers.Real):
        as_float = float(active_groups)
        if not as_float.is_integer():
            raise AcquisitionError(
                f"active_groups must be a whole number of groups, "
                f"got {active_groups!r}"
            )
        count = int(as_float)
    else:
        raise AcquisitionError(
            f"active_groups must be an integer, got {active_groups!r}"
        )
    if not 0 <= count <= n_groups:
        raise AcquisitionError(
            f"active_groups must be 0..{n_groups}, got {active_groups}"
        )
    return count


@dataclass(frozen=True)
class AcquisitionSpec:
    """Declarative description of one (sensor, placement) acquisition.

    The single construction currency of the acquisition API: harnesses
    are built from specs (``AESTraceAcquisition(spec=spec)`` or
    ``spec.build()``), fan-out campaigns take lists of them
    (:class:`MultiSensorAcquisition`), and the experiment modules'
    placement helpers (:func:`repro.experiments.common.placement_spec`)
    return them.

    Fields
    ------
    sensor:
        A placed, calibrated sensor.
    coupling:
        The PDN surrogate for the shared device.
    hw_model:
        The AES hardware/power model (clocks and currents).
    aes_position:
        Die position of the AES core (its placement centroid).
    noise:
        Voltage noise model; ``None`` means white noise at the sensor
        constants' RMS level.
    kernel:
        Compute backend for :meth:`AESTraceAcquisition.acquire_block`:
        ``None`` (the process default, normally ``"fused"``), a
        registered name, or an
        :class:`~repro.kernels.AcquisitionKernel` instance.
    """

    sensor: VoltageSensor
    coupling: CouplingModel
    hw_model: AESHardwareModel
    aes_position: Tuple[float, float]
    noise: Optional[NoiseModel] = None
    kernel: Optional[Union[str, AcquisitionKernel]] = None

    def build(self) -> "AESTraceAcquisition":
        """Construct the acquisition harness this spec describes."""
        return AESTraceAcquisition(spec=self)


class AESTraceAcquisition:
    """Collect AES power traces through an on-chip sensor.

    Canonically constructed from a single :class:`AcquisitionSpec`::

        acq = AESTraceAcquisition(spec=spec)   # or spec.build()

    The original positional/keyword signature ``(sensor, coupling,
    hw_model, aes_position, noise=None, kernel=None)`` still works but
    is deprecated; it routes the arguments through ``AcquisitionSpec``
    and emits a :class:`DeprecationWarning`.  See the spec's field
    documentation for parameter semantics.
    """

    def __init__(self, *args, spec: Optional[AcquisitionSpec] = None, **kwargs) -> None:
        if spec is not None:
            if args or kwargs:
                raise TypeError(
                    "AESTraceAcquisition(spec=...) does not accept additional "
                    "arguments — put everything in the AcquisitionSpec"
                )
            if not isinstance(spec, AcquisitionSpec):
                raise TypeError(
                    f"spec must be an AcquisitionSpec, got {type(spec).__name__}"
                )
        else:
            warnings.warn(
                "constructing AESTraceAcquisition from individual arguments "
                "is deprecated; build an AcquisitionSpec and pass spec=... "
                "(or call spec.build())",
                DeprecationWarning,
                stacklevel=2,
            )
            spec = AcquisitionSpec(*args, **kwargs)
        self.sensor = spec.sensor
        self.coupling = spec.coupling
        self.hw_model = spec.hw_model
        self.aes_position = spec.aes_position
        self.kernel = get_kernel(spec.kernel)
        constants = spec.sensor.constants
        # White noise only by default: campaign-scale drift is a
        # separate, explicitly-opted-in effect (pass a NoiseModel with
        # drift_rms set) so that trace-count results stay comparable
        # across AES frequencies, whose traces differ in length.
        self.noise = spec.noise or NoiseModel(
            white_rms=constants.voltage_noise_rms, drift_rms=0.0
        )

    @property
    def spec(self) -> AcquisitionSpec:
        """This harness's configuration as a (normalized) spec — noise
        and kernel are the resolved instances, not the ``None``
        placeholders they may have been built from."""
        return AcquisitionSpec(
            sensor=self.sensor,
            coupling=self.coupling,
            hw_model=self.hw_model,
            aes_position=self.aes_position,
            noise=self.noise,
            kernel=self.kernel,
        )

    def default_n_samples(self) -> int:
        """Trace length used when ``n_samples`` is not given: the
        encryption span plus one cycle of margin on either side."""
        return self.hw_model.samples_per_block + 2 * self.hw_model.samples_per_cycle

    def cache_token(self) -> Dict[str, object]:
        """Deterministic fingerprint of everything this harness feeds
        into a trace block, for :mod:`repro.traces.blockstore` keys.

        Combines the behavioral tokens of the sensor, the PDN
        surrogate, the hardware model and the noise model with the AES
        placement.  The acquisition *kernel* is deliberately excluded:
        kernels are bit-identical by construction (differentially
        tested in ``tests/test_kernels.py``), so a block acquired under
        one kernel is valid for all — and switching kernels must not
        invalidate a warm cache.
        """
        return {
            "kind": "aes-trace",
            "sensor": self.sensor.cache_token(),
            "coupling": self.coupling.cache_token(),
            "hw_model": self.hw_model.cache_token(),
            "noise": self.noise.cache_token(),
            "aes_position": [float(p) for p in self.aes_position],
        }

    def acquire_block(
        self,
        aes: AES128,
        plaintexts: np.ndarray,
        rng: np.random.Generator,
        n_samples: int,
        timings: Optional[Dict[str, float]] = None,
        profile: Optional[StageProfile] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One fully vectorized acquisition block.

        Runs the model pipeline (AES round states -> switching currents
        -> PDN filter -> sensor sampling) for a batch of plaintexts,
        drawing noise and sampling randomness from ``rng``.  The work is
        delegated to the harness's :attr:`kernel` (fused by default; the
        reference path is available as ``kernel="reference"``).

        Per-stage costs accumulate into ``profile`` when given; the
        legacy ``timings`` dict still receives this call's ``"aes"``,
        ``"pdn"`` and ``"sensor"`` wall seconds, but is deprecated in
        favour of the span-recording ``profile``.

        Returns ``(readouts, ciphertexts)`` with shapes
        ``(m, n_samples)`` int16 and ``(m, 16)`` uint8.
        """
        if timings is not None:
            _warn_timings_dict()
        if profile is None:
            profile = StageProfile()
        before = profile.stage_seconds() if timings is not None else None
        readouts, cts = self.kernel.acquire(
            self, aes, plaintexts, rng, n_samples, profile=profile
        )
        if timings is not None:
            for name, seconds in profile.stage_seconds().items():
                delta = seconds - before.get(name, 0.0)
                timings[name] = timings.get(name, 0.0) + delta
        return readouts, cts

    def trace_metadata(self, key) -> Dict[str, object]:
        """The acquisition-parameter metadata attached to trace sets."""
        aes = key if isinstance(key, AES128) else AES128(key)
        sensor_pos = self.sensor.require_position()
        return {
            "sensor": self.sensor.name,
            "sensor_type": type(self.sensor).__name__,
            "sensor_position": list(map(float, sensor_pos)),
            "aes_position": list(map(float, self.aes_position)),
            "aes_frequency_hz": self.hw_model.aes_clock.frequency,
            "sensor_frequency_hz": self.hw_model.sensor_clock.frequency,
            "samples_per_cycle": self.hw_model.samples_per_cycle,
            "kernel": self.kernel.name,
        }

    def collect(
        self,
        n_traces: int,
        *,
        key,
        rng: RngLike = None,
        chunk_size: int = 4096,
        n_samples: Optional[int] = None,
    ) -> TraceSet:
        """Run ``n_traces`` encryptions and record the sensor readouts.

        All arguments after ``n_traces`` are keyword-only.  Traces are
        generated in chunks to bound memory; every chunk is fully
        vectorized (AES, PDN filter, sensor sampling).  For multi-core
        collection use :meth:`repro.runtime.Engine.collect`, which
        shards this workload deterministically across processes.
        """
        if n_traces <= 0:
            raise AcquisitionError("n_traces must be positive")
        validate_chunk_size(chunk_size)
        rng = make_rng(rng)
        aes = AES128(key)
        if n_samples is None:
            n_samples = self.default_n_samples()

        traces = np.empty((n_traces, n_samples), dtype=np.int16)
        pts = np.empty((n_traces, 16), dtype=np.uint8)
        cts = np.empty((n_traces, 16), dtype=np.uint8)

        done = 0
        while done < n_traces:
            m = min(chunk_size, n_traces - done)
            chunk_pts = rng.integers(0, 256, size=(m, 16), dtype=np.uint8)
            readouts, chunk_cts = self.acquire_block(aes, chunk_pts, rng, n_samples)
            traces[done : done + m] = readouts
            pts[done : done + m] = chunk_pts
            cts[done : done + m] = chunk_cts
            done += m

        return TraceSet(
            traces=traces,
            plaintexts=pts,
            ciphertexts=cts,
            key=aes.key,
            metadata=self.trace_metadata(aes),
        )


class MultiSensorAcquisition:
    """N sensors/placements observing one AES victim campaign.

    Accepts a list of :class:`AcquisitionSpec` (or built
    :class:`AESTraceAcquisition`) entries and fans every block's shared
    AES+PDN pass out to all of them via
    :meth:`~repro.kernels.AcquisitionKernel.acquire_many`.  Sensor
    type, placement, coupling and AES position are free to vary per
    entry; the hardware model and noise model must be value-equal and
    the kernel must be the same instance (the fan-out models one
    physical victim run, so there is exactly one cipher schedule and
    one acquisition RNG stream).

    The per-sensor results are bit-identical to N independent
    single-sensor campaigns over the same seed — that is the
    ``acquire_many`` contract, differentially tested in
    ``tests/test_fanout.py`` — so fan-out is purely a cost optimization
    and per-sensor cache blocks stay interchangeable with single-sensor
    ones.
    """

    def __init__(
        self,
        acquisitions: Sequence[Union[AcquisitionSpec, AESTraceAcquisition]],
    ) -> None:
        harnesses: List[AESTraceAcquisition] = []
        for entry in acquisitions:
            if isinstance(entry, AESTraceAcquisition):
                harnesses.append(entry)
            elif isinstance(entry, AcquisitionSpec):
                harnesses.append(entry.build())
            else:
                raise AcquisitionError(
                    "MultiSensorAcquisition entries must be AcquisitionSpec "
                    f"or AESTraceAcquisition, got {type(entry).__name__}"
                )
        if not harnesses:
            raise AcquisitionError(
                "MultiSensorAcquisition needs at least one acquisition"
            )
        first = harnesses[0]
        hw_token = first.hw_model.cache_token()
        noise_token = first.noise.cache_token()
        for harness in harnesses[1:]:
            if harness.hw_model.cache_token() != hw_token:
                raise AcquisitionError(
                    "fan-out acquisitions must share one hardware-model "
                    "configuration (same clocks and currents)"
                )
            if harness.noise.cache_token() != noise_token:
                raise AcquisitionError(
                    "fan-out acquisitions must share one noise-model "
                    "configuration"
                )
            if harness.kernel is not first.kernel:
                raise AcquisitionError(
                    "fan-out acquisitions must share one kernel instance"
                )
        self.acquisitions = harnesses
        self.kernel = first.kernel

    def __len__(self) -> int:
        return len(self.acquisitions)

    def __iter__(self) -> Iterator[AESTraceAcquisition]:
        return iter(self.acquisitions)

    def __getitem__(self, index: int) -> AESTraceAcquisition:
        return self.acquisitions[index]

    def default_n_samples(self) -> int:
        """Shared trace length (the hardware models are value-equal)."""
        return self.acquisitions[0].default_n_samples()

    def cache_tokens(self) -> List[Dict[str, object]]:
        """Per-sensor cache tokens — each is exactly the token the
        sensor's standalone harness would produce, which is what keeps
        fan-out and single-sensor campaigns cache-compatible."""
        return [harness.cache_token() for harness in self.acquisitions]

    def acquire_block_many(
        self,
        aes: AES128,
        plaintexts: np.ndarray,
        rng: np.random.Generator,
        n_samples: int,
        profile: Optional[StageProfile] = None,
        skip=(),
    ) -> list:
        """One fan-out block: per-sensor ``(readouts, ciphertexts)``
        tuples (``None`` at skipped indices), under the shared-kernel
        :meth:`~repro.kernels.AcquisitionKernel.acquire_many`
        contract."""
        return self.kernel.acquire_many(
            self.acquisitions, aes, plaintexts, rng, n_samples,
            profile=profile, skip=skip,
        )

    def collect(
        self,
        n_traces: int,
        *,
        key,
        rng: RngLike = None,
        chunk_size: int = 4096,
        n_samples: Optional[int] = None,
    ) -> List[TraceSet]:
        """Serial fan-out collection: one :class:`TraceSet` per sensor.

        Mirrors :meth:`AESTraceAcquisition.collect`; each returned
        trace set is bit-identical to what its sensor's standalone
        harness would have collected with the same ``rng`` seed.  For
        multi-core collection use
        :meth:`repro.runtime.Engine.collect_many`.
        """
        if n_traces <= 0:
            raise AcquisitionError("n_traces must be positive")
        validate_chunk_size(chunk_size)
        rng = make_rng(rng)
        aes = AES128(key)
        if n_samples is None:
            n_samples = self.default_n_samples()

        n_sensors = len(self.acquisitions)
        traces = [
            np.empty((n_traces, n_samples), dtype=np.int16)
            for _ in range(n_sensors)
        ]
        pts = np.empty((n_traces, 16), dtype=np.uint8)
        cts = np.empty((n_traces, 16), dtype=np.uint8)

        done = 0
        while done < n_traces:
            m = min(chunk_size, n_traces - done)
            chunk_pts = rng.integers(0, 256, size=(m, 16), dtype=np.uint8)
            results = self.acquire_block_many(aes, chunk_pts, rng, n_samples)
            pts[done : done + m] = chunk_pts
            cts[done : done + m] = results[0][1]
            for index, (readouts, _) in enumerate(results):
                traces[index][done : done + m] = readouts
            done += m

        return [
            TraceSet(
                traces=traces[index],
                plaintexts=pts,
                ciphertexts=cts,
                key=aes.key,
                metadata=harness.trace_metadata(aes),
            )
            for index, harness in enumerate(self.acquisitions)
        ]


def characterize_droop(
    sensor: VoltageSensor,
    coupling: CouplingModel,
    virus: PowerVirusBank,
    active_groups: int,
) -> float:
    """Steady-state droop [V] at the sensor for a virus activity level
    (the deterministic part of :func:`characterize_readouts`)."""
    active_groups = _coerce_group_count(active_groups, virus.n_groups)
    sensor_pos = sensor.require_position()
    enables = np.zeros(virus.n_groups)
    enables[:active_groups] = 1.0
    return float(virus.droop_at(coupling, sensor_pos, enables))


def characterize_block(
    sensor: VoltageSensor,
    droop: float,
    noise: NoiseModel,
    n_readouts: int,
    rng: np.random.Generator,
    timings: Optional[Dict[str, float]] = None,
    profile: Optional[StageProfile] = None,
) -> np.ndarray:
    """One vectorized characterization block: noisy voltages around a
    precomputed droop, sampled with the exact per-bit method."""
    if timings is not None:
        _warn_timings_dict()
    if profile is None:
        profile = StageProfile()
    before = profile.stage_seconds() if timings is not None else None
    with profile.stage("pdn", items=n_readouts) as acct:
        volts = sensor.constants.v_nominal - droop + noise.sample(n_readouts, rng)
        acct.account(volts)
    with profile.stage("sensor", items=n_readouts) as acct:
        readouts = sensor.sample_readouts(volts, rng=rng, method=SamplingMethod.EXACT)
        acct.account(readouts)
    if timings is not None:
        for name, seconds in profile.stage_seconds().items():
            delta = seconds - before.get(name, 0.0)
            timings[name] = timings.get(name, 0.0) + delta
    return readouts


def characterize_readouts(
    sensor: VoltageSensor,
    coupling: CouplingModel,
    virus: PowerVirusBank,
    active_groups: int,
    n_readouts: int = 2000,
    noise: Optional[NoiseModel] = None,
    rng: RngLike = None,
) -> np.ndarray:
    """Sample a sensor under a steady power-virus activity level
    (the Fig. 3 / Fig. 4 workload).

    Parameters
    ----------
    sensor:
        Placed, calibrated sensor.
    coupling:
        PDN surrogate.
    virus:
        Placed power-virus bank.
    active_groups:
        How many of the bank's groups are enabled (0 .. n_groups).
        Integer-valued floats are coerced; fractional values raise
        :class:`~repro.errors.AcquisitionError`.
    n_readouts:
        Readouts to sample (the paper uses 2,000 per level).

    Returns
    -------
    numpy.ndarray
        ``(n_readouts,)`` integer readouts.
    """
    droop = characterize_droop(sensor, coupling, virus, active_groups)
    rng = make_rng(rng)
    noise = noise or NoiseModel(white_rms=sensor.constants.voltage_noise_rms)
    return characterize_block(sensor, droop, noise, n_readouts, rng)
