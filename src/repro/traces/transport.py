"""Readout transport: the UART/BRAM path that bounds acquisition rate.

The paper's Basys3 setup streams LeakyDSP readouts to a laptop over
UART.  That link, not the sensor, bounds the campaign: a 48-bit readout
at 300 MS/s is 14.4 Gb/s of raw data against a UART's ~10 Mb/s, so the
on-chip side buffers one triggered window per encryption into BRAM and
drains it between triggers.  This module models that plumbing:

* :class:`UartLink` — serial throughput with start/stop-bit framing;
* :class:`CaptureBuffer` — the BRAM window buffer (depth limits how
  many samples one trigger can record — the reason traces are windows
  around the encryption, not continuous streams);
* :class:`AcquisitionPlan` — end-to-end campaign cost: wall time per
  trace and for the full campaign, the numbers that make "60 k traces"
  a real-world effort rather than a free parameter.

The covert-channel receiver's modest effective readout rate
(:class:`repro.attacks.covert.CovertChannelConfig.readout_rate`) is the
same bottleneck seen from the other side: on-chip averaging exists to
fit the link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import AcquisitionError
from repro.timing.sampling import ClockSpec

#: Bits per UART frame per payload byte (8N1 framing).
UART_FRAME_BITS = 10


@dataclass(frozen=True)
class UartLink:
    """A serial link with 8N1 framing.

    Parameters
    ----------
    baud:
        Line rate [bit/s].  The Basys3's FT2232 bridge is reliable to
        ~12 Mbaud; the classic default is 115200.
    """

    baud: float = 921_600.0

    def __post_init__(self) -> None:
        if self.baud <= 0:
            raise AcquisitionError("baud rate must be positive")

    @property
    def payload_bytes_per_second(self) -> float:
        """Net payload throughput after framing."""
        return self.baud / UART_FRAME_BITS

    def transfer_time(self, n_bytes: int) -> float:
        """Seconds to move ``n_bytes`` of payload."""
        if n_bytes < 0:
            raise AcquisitionError("byte count must be non-negative")
        return n_bytes / self.payload_bytes_per_second


@dataclass(frozen=True)
class CaptureBuffer:
    """The on-chip BRAM window buffer.

    Parameters
    ----------
    depth:
        Samples one trigger can store (one BRAM36 holds 2048 x 18 bit;
        a readout needs one byte after Hamming-weight compression, so a
        single BRAM stores a 4096-sample window).
    bytes_per_sample:
        Stored record size; the paper's Hamming-weight readout fits one
        byte.
    """

    depth: int = 4096
    bytes_per_sample: int = 1

    def __post_init__(self) -> None:
        if self.depth < 1 or self.bytes_per_sample < 1:
            raise AcquisitionError("buffer geometry must be positive")

    def fits(self, n_samples: int) -> bool:
        """Whether one trigger window fits the buffer."""
        return 0 < n_samples <= self.depth

    def window_bytes(self, n_samples: int) -> int:
        """Payload bytes one window drains over the link."""
        if not self.fits(n_samples):
            raise AcquisitionError(
                f"window of {n_samples} samples exceeds buffer depth {self.depth}"
            )
        return n_samples * self.bytes_per_sample


@dataclass(frozen=True)
class AcquisitionPlan:
    """End-to-end campaign cost model.

    Per trace: trigger + encryption (AES cycles at its clock) + window
    capture (samples at the sensor clock) + UART drain + host-side
    handshake.  Capture overlaps encryption; the drain dominates.
    """

    link: UartLink
    buffer: CaptureBuffer
    sensor_clock: ClockSpec
    aes_clock: ClockSpec
    window_samples: int
    #: Fixed per-trace host/protocol overhead [s] (command, key/PT
    #: transfer, OS latency); 200 us is typical of a tight UART loop.
    handshake_time: float = 200e-6

    def __post_init__(self) -> None:
        if not self.buffer.fits(self.window_samples):
            raise AcquisitionError(
                f"window of {self.window_samples} samples exceeds the "
                f"capture buffer ({self.buffer.depth})"
            )
        if self.handshake_time < 0:
            raise AcquisitionError("handshake time must be non-negative")

    @property
    def capture_time(self) -> float:
        """Seconds the trigger window spans on-chip."""
        return self.window_samples * self.sensor_clock.period

    @property
    def drain_time(self) -> float:
        """Seconds to move one window over the link."""
        return self.link.transfer_time(self.buffer.window_bytes(self.window_samples))

    @property
    def time_per_trace(self) -> float:
        """Wall seconds per collected trace."""
        return self.capture_time + self.drain_time + self.handshake_time

    @property
    def traces_per_second(self) -> float:
        """Campaign throughput."""
        return 1.0 / self.time_per_trace

    def campaign_time(self, n_traces: int) -> float:
        """Wall seconds for a campaign of ``n_traces``."""
        if n_traces < 0:
            raise AcquisitionError("trace count must be non-negative")
        return n_traces * self.time_per_trace

    def describe(self, n_traces: int) -> str:
        """Human-readable campaign summary."""
        total = self.campaign_time(n_traces)
        return (
            f"{n_traces} traces x {self.window_samples} samples: "
            f"{self.traces_per_second:.0f} traces/s, "
            f"total {total:.1f} s ({total / 60:.1f} min)"
        )
