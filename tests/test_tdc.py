"""Tests for the TDC baseline sensor."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fpga.device import SiteType
from repro.fpga.placement import Placer
from repro.sensors.tdc import TDC


@pytest.fixture(scope="module")
def tdc(basys3_device):
    sensor = TDC(device=basys3_device, seed=1)
    sensor.calibrate_midscale()
    return sensor


class TestConstruction:
    def test_default_width(self, basys3_device):
        assert TDC(device=basys3_device).output_width == 128

    def test_stage_count_must_be_multiple_of_four(self, basys3_device):
        with pytest.raises(ConfigurationError):
            TDC(device=basys3_device, n_stages=126)

    def test_arrival_ladder_monotone_on_average(self, basys3_device):
        sensor = TDC(device=basys3_device, seed=0)
        arrivals = sensor._arrival_nominal
        # Jitter aside, the ladder climbs one stage delay per tap.
        fit = np.polyfit(np.arange(128), arrivals, 1)
        assert fit[0] == pytest.approx(sensor.constants.tdc_stage_delay, rel=0.1)


class TestNetlistStructure:
    def test_carry_chain_length(self, basys3_device):
        nl = TDC(device=basys3_device, seed=0).netlist()
        assert len(nl.cells_of_type("CARRY4")) == 32

    def test_one_ff_per_stage(self, basys3_device):
        nl = TDC(device=basys3_device, seed=0).netlist()
        assert len(nl.cells_of_type("FDRE")) == 128

    def test_coarse_lut_line_present(self, basys3_device):
        nl = TDC(device=basys3_device, seed=0).netlist()
        assert len(nl.cells_of_type("LUT")) >= 10

    def test_no_combinational_loop(self, basys3_device):
        nl = TDC(device=basys3_device, seed=0).netlist()
        assert nl.combinational_loops() == []

    def test_places_on_slices(self, basys3_device):
        sensor = TDC(device=basys3_device, seed=0)
        placement = sensor.place(Placer(basys3_device))
        ff = sensor.netlist().cells_of_type("FDRE")[0]
        assert placement.site_of(ff.name).site_type is SiteType.SLICE


class TestReadout:
    def test_midscale_calibration_centres(self, tdc):
        r = tdc.expected_readout(np.array([1.0]))[0]
        assert abs(r - 64) < 16

    def test_thermometer_monotone_in_voltage(self, tdc):
        v = np.linspace(0.9, 1.02, 30)
        r = tdc.expected_readout(v)
        assert np.all(np.diff(r) >= -1e-9)

    def test_linearity_beats_leakydsp(self, basys3_device, tdc):
        """The TDC's uniform tap ladder yields a near-perfectly linear
        readout over a droop range (the paper's r = -0.996 vs -0.974)."""
        v = np.linspace(0.965, 1.0, 20)
        r = tdc.expected_readout(v)
        resid = r - np.polyval(np.polyfit(v, r, 1), v)
        assert np.abs(resid).max() < 0.5

    def test_sensitivity_positive(self, tdc):
        assert tdc.sensitivity() > 0

    def test_probabilities_are_thermometer_like(self, tdc):
        p = tdc.bit_probabilities(np.array([1.0]))[0]
        # Early taps certain, late taps unreachable.
        assert p[0] > 0.99
        assert p[-1] < 0.01

    def test_exact_sampling_bounds(self, tdc, rng):
        r = tdc.sample_readouts(np.full(100, 1.0), rng=rng, method="exact")
        assert np.all((0 <= r) & (r <= 128))


class TestTapInterface:
    def test_tap_plan_monotone(self, basys3_device):
        sensor = TDC(device=basys3_device, seed=0)
        plan = sensor.tap_plan()
        phases = [
            c * sensor._idelay_clk.tap_delay - a * sensor._idelay_a.tap_delay
            for a, c in plan
        ]
        assert phases == sorted(phases)

    def test_set_taps_shifts_readout(self, basys3_device):
        sensor = TDC(device=basys3_device, seed=0)
        sensor.set_taps(0, 0)
        r0 = sensor.expected_readout(np.array([1.0]))[0]
        sensor.set_taps(0, 16)  # later capture: edge travels further
        r1 = sensor.expected_readout(np.array([1.0]))[0]
        assert r1 > r0
