"""Tests for the fast PDN coupling surrogate and its mesh calibration."""

import numpy as np
import pytest

from repro.config import PhysicalConstants
from repro.errors import ConfigurationError
from repro.pdn.coupling import (
    CouplingModel,
    LoadSite,
    REGION_SUPPLY_FACTORS,
    fit_to_mesh,
)
from repro.pdn.mesh import PDNMesh


@pytest.fixture(scope="module")
def coupling(basys3_device):
    return CouplingModel(basys3_device)


class TestKappa:
    def test_positive_everywhere(self, coupling, basys3_device):
        k = coupling.kappa((5, 5), (40, 140))
        assert k > 0

    def test_decays_with_distance(self, coupling):
        near = coupling.kappa((10, 10), (12, 10))
        far = coupling.kappa((10, 10), (10, 120))
        assert near > far

    def test_floor_keeps_far_coupling_alive(self, coupling, basys3_device):
        c = coupling.constants
        far = coupling.kappa((1, 1), (40, 148))
        sensor_g = coupling.supply_factor(1, 1)
        assert far > 0.9 * c.coupling_r0 * c.coupling_floor / sensor_g

    def test_supply_factor_divides(self, basys3_device):
        cm = CouplingModel(
            basys3_device, supply_factors={"X0Y0": 2.0, "X1Y0": 1.0}
        )
        load = (20, 25)
        weak = cm.kappa((30, 25), load)   # in X1Y0, factor 1.0
        strong = cm.kappa((10, 25), load)  # in X0Y0, factor 2.0
        # Equal distance on both sides: only the factor differs.
        assert weak > strong

    def test_vector_matches_scalar(self, coupling):
        loads = [LoadSite(3, 4), LoadSite(30, 100)]
        vec = coupling.coupling_vector((10, 10), loads)
        for i, l in enumerate(loads):
            assert vec[i] == pytest.approx(coupling.kappa((10, 10), l.position))

    def test_empty_loads(self, coupling):
        assert coupling.coupling_vector((0, 0), []).shape == (0,)

    def test_unknown_region_factor_rejected(self, basys3_device):
        with pytest.raises(ConfigurationError):
            CouplingModel(basys3_device, supply_factors={"X7Y7": 1.0})

    def test_nonpositive_factor_rejected(self, basys3_device):
        with pytest.raises(ConfigurationError):
            CouplingModel(basys3_device, supply_factors={"X0Y0": 0.0})

    def test_default_factor_maps_exist(self, basys3_device, zu3eg_device):
        for dev in (basys3_device, zu3eg_device):
            factors = REGION_SUPPLY_FACTORS[dev.name]
            region_names = {r.name for r in dev.clock_regions}
            assert set(factors) == region_names


class TestStaticDroop:
    def test_zero_current_zero_droop(self, coupling):
        loads = [LoadSite(5, 5)]
        assert coupling.static_droop((10, 10), loads, [0.0]) == 0.0

    def test_droop_scales_linearly(self, coupling):
        loads = [LoadSite(5, 5)]
        d1 = coupling.static_droop((10, 10), loads, [1e-3])
        d2 = coupling.static_droop((10, 10), loads, [2e-3])
        assert d2 == pytest.approx(2 * d1)

    def test_current_count_mismatch_rejected(self, coupling):
        with pytest.raises(ConfigurationError):
            coupling.static_droop((0, 0), [LoadSite(1, 1)], [1e-3, 2e-3])


class TestFiltering:
    def test_constant_current_passes_through(self, coupling):
        x = np.full(100, 3e-3)
        y = coupling.filter_currents(x, dt=3.33e-9)
        np.testing.assert_allclose(y, x, rtol=1e-9)

    def test_step_rises_with_tau(self, coupling):
        x = np.concatenate([np.zeros(1), np.ones(200)])
        y = coupling.filter_currents(x, dt=1e-9)
        tau = coupling.constants.pdn_tau
        k = int(round(tau / 1e-9))
        # After one time constant the step reaches ~63%.
        assert y[k] == pytest.approx(1 - np.exp(-1), abs=0.08)

    def test_filter_preserves_shape_2d(self, coupling):
        x = np.random.default_rng(0).random((4, 50))
        y = coupling.filter_currents(x, dt=1e-9)
        assert y.shape == x.shape

    def test_filter_is_causal_smoothing(self, coupling):
        x = np.zeros(100)
        x[50] = 1.0
        y = coupling.filter_currents(x, dt=1e-9)
        assert np.all(y[:50] < 1e-12)
        assert y[50] < 1.0  # impulse is attenuated


class TestVoltageTrace:
    def test_idle_sits_at_nominal(self, coupling):
        v = coupling.voltage_trace((10, 10), [LoadSite(5, 5)], np.zeros((1, 20)), 1e-9)
        np.testing.assert_allclose(v, coupling.constants.v_nominal)

    def test_load_droops_voltage(self, coupling):
        currents = np.full((1, 50), 5e-3)
        v = coupling.voltage_trace((6, 6), [LoadSite(5, 5)], currents, 1e-9)
        assert np.all(v < coupling.constants.v_nominal)

    def test_1d_currents_accepted(self, coupling):
        v = coupling.voltage_trace((6, 6), [LoadSite(5, 5)], np.full(10, 1e-3), 1e-9)
        assert v.shape == (10,)

    def test_row_mismatch_rejected(self, coupling):
        with pytest.raises(ConfigurationError):
            coupling.voltage_trace(
                (0, 0), [LoadSite(1, 1)], np.zeros((2, 10)), 1e-9
            )

    def test_unfiltered_tracks_instantaneously(self, coupling):
        currents = np.zeros((1, 10))
        currents[0, 5] = 1e-3
        v = coupling.voltage_trace(
            (6, 6), [LoadSite(5, 5)], currents, 1e-9, filtered=False
        )
        droop = coupling.constants.v_nominal - v
        assert droop[5] > 0
        assert droop[6] == pytest.approx(0.0, abs=1e-15)


class TestMeshCalibration:
    def test_fitted_kernel_matches_mesh_shape(self):
        mesh = PDNMesh(21, 21, r_grid=0.5, r_via=25.0)
        r0, decay, floor = fit_to_mesh(mesh, (10, 10))
        assert r0 > 0
        assert decay > 0
        assert 0 < floor < 1
        # The fitted kernel reproduces the mesh profile within ~20%
        # over the near field.
        profile = mesh.coupling_profile((10, 10), 1e-3) / 1e-3
        ys, xs = np.mgrid[0:21, 0:21]
        d = np.hypot(xs - 10, ys - 10)
        pred = r0 * (floor + (1 - floor) * np.exp(-d / decay))
        near = d < 8
        err = np.abs(pred[near] - profile[near]) / profile[near].max()
        assert err.max() < 0.2
