"""Tests for attack-progress metrics (rank curves, disclosure)."""

import numpy as np
import pytest

from repro.attacks.cpa import CPAAttack
from repro.attacks.metrics import (
    RankCurve,
    RankPoint,
    guessing_entropy,
    rank_curve,
    traces_to_disclosure,
)
from repro.errors import AttackError
from repro.traces.store import TraceSet
from repro.victims.aes.core import AES128
from repro.victims.aes.sbox import HW8

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


@pytest.fixture(scope="module")
def leaky_trace_set():
    """A synthetic trace set with strong last-round HD leakage."""
    rng = np.random.default_rng(0)
    n = 4000
    aes = AES128(KEY)
    pts = rng.integers(0, 256, (n, 16), dtype=np.uint8)
    states = aes.round_states(pts)
    hd = HW8[states[:, 9] ^ states[:, 10]].sum(axis=1).astype(float)
    traces = np.column_stack(
        [rng.normal(0, 1, n), -hd + rng.normal(0, 3.0, n), rng.normal(0, 1, n)]
    )
    return TraceSet(
        traces=traces,
        plaintexts=pts,
        ciphertexts=states[:, 10],
        key=np.frombuffer(KEY, dtype=np.uint8),
    )


class TestRankCurve:
    def test_rank_decreases_and_discloses(self, leaky_trace_set):
        curve = rank_curve(leaky_trace_set, [500, 1000, 2000, 4000])
        uppers = [p.log2_upper for p in curve.points]
        assert uppers[-1] < uppers[0]
        assert curve.points[-1].recovered

    def test_disclosure_point(self, leaky_trace_set):
        curve = rank_curve(leaky_trace_set, [500, 1000, 2000, 4000])
        disclosed = curve.traces_to_disclosure
        assert disclosed is not None
        assert disclosed <= 4000

    def test_bounds_ordered(self, leaky_trace_set):
        curve = rank_curve(leaky_trace_set, [1000, 4000])
        for p in curve.points:
            assert p.log2_lower <= p.log2_upper

    def test_as_arrays(self, leaky_trace_set):
        curve = rank_curve(leaky_trace_set, [1000, 2000])
        n, lo, hi = curve.as_arrays()
        assert list(n) == [1000, 2000]
        assert lo.shape == hi.shape == (2,)

    def test_checkpoint_validation(self, leaky_trace_set):
        with pytest.raises(AttackError):
            rank_curve(leaky_trace_set, [])
        with pytest.raises(AttackError):
            rank_curve(leaky_trace_set, [2])
        with pytest.raises(AttackError):
            rank_curve(leaky_trace_set, [99999999])

    def test_duplicate_checkpoints_deduped(self, leaky_trace_set):
        curve = rank_curve(leaky_trace_set, [1000, 1000, 2000])
        assert [p.n_traces for p in curve.points] == [1000, 2000]

    def test_sample_window_passthrough(self, leaky_trace_set):
        curve = rank_curve(leaky_trace_set, [4000], sample_window=(1, 2))
        assert curve.points[-1].recovered


class TestTracesToDisclosure:
    def test_returns_grid_point(self, leaky_trace_set):
        n = traces_to_disclosure(leaky_trace_set, step=1000)
        assert n in (1000, 2000, 3000, 4000)

    def test_none_when_hopeless(self):
        rng = np.random.default_rng(1)
        ts = TraceSet(
            traces=rng.normal(0, 1, (2000, 3)),
            plaintexts=rng.integers(0, 256, (2000, 16), dtype=np.uint8),
            ciphertexts=rng.integers(0, 256, (2000, 16), dtype=np.uint8),
            key=np.frombuffer(KEY, dtype=np.uint8),
        )
        assert traces_to_disclosure(ts, step=1000) is None


class TestGuessingEntropy:
    def test_zero_when_recovered(self, leaky_trace_set):
        attack = CPAAttack(3)
        attack.add_trace_set(leaky_trace_set)
        assert guessing_entropy(attack, KEY) == pytest.approx(0.0)

    def test_high_for_noise(self):
        rng = np.random.default_rng(2)
        attack = CPAAttack(3)
        attack.add_traces(
            rng.normal(0, 1, (1000, 3)),
            rng.integers(0, 256, (1000, 16), dtype=np.uint8),
        )
        assert guessing_entropy(attack, KEY) > 4.0


class TestRankCurveContainer:
    def test_no_disclosure(self):
        curve = RankCurve(points=[RankPoint(100, 50.0, 60.0, False)])
        assert curve.traces_to_disclosure is None

    def test_first_disclosure_wins(self):
        curve = RankCurve(
            points=[
                RankPoint(100, 5.0, 9.0, False),
                RankPoint(200, 0.0, 0.0, True),
                RankPoint(300, 0.0, 0.0, True),
            ]
        )
        assert curve.traces_to_disclosure == 200
