"""Tests for bitstream reconstruction and the timing-check defense."""

import pytest

from repro.core.leaky_dsp import LeakyDSP
from repro.defense.checker import BitstreamChecker
from repro.fpga.bitstream import generate_bitstream, reconstruct_netlist
from repro.fpga.device import xc7a35t
from repro.fpga.placement import Placer
from repro.sensors.rds import RDS
from repro.sensors.ro import RingOscillatorSensor
from repro.sensors.tdc import TDC


def _bitstream(sensor_factory, name):
    device = xc7a35t()
    sensor = sensor_factory(device, name)
    placement = sensor.place(Placer(device))
    return sensor, generate_bitstream(sensor.netlist(), placement)


@pytest.fixture(scope="module")
def leaky_bs():
    return _bitstream(lambda d, n: LeakyDSP(device=d, seed=1, name=n), "lk")


@pytest.fixture(scope="module")
def tdc_bs():
    return _bitstream(lambda d, n: TDC(device=d, seed=1, name=n), "td")


class TestReconstruction:
    def test_cell_counts_preserved(self, leaky_bs):
        sensor, bs = leaky_bs
        rebuilt = reconstruct_netlist(bs)
        assert rebuilt.count_by_type() == sensor.netlist().count_by_type()

    def test_dsp_attributes_preserved(self, leaky_bs):
        _sensor, bs = leaky_bs
        rebuilt = reconstruct_netlist(bs)
        dsps = sorted(rebuilt.cells_of_type("DSP48E1"), key=lambda c: c.name)
        assert dsps[0].primitive.is_fully_combinational
        assert dsps[-1].primitive.attributes["PREG"] == 1

    def test_connectivity_preserved(self, leaky_bs):
        sensor, bs = leaky_bs
        rebuilt = reconstruct_netlist(bs)
        assert set(rebuilt.nets) == set(sensor.netlist().nets)

    def test_ports_synthesized_from_routes(self, leaky_bs):
        _sensor, bs = leaky_bs
        rebuilt = reconstruct_netlist(bs)
        assert "clk_in" in rebuilt.ports

    def test_loop_detection_survives_roundtrip(self):
        _sensor, bs = _bitstream(
            lambda d, n: RingOscillatorSensor(device=d, name=n), "ro2"
        )
        rebuilt = reconstruct_netlist(bs)
        assert rebuilt.combinational_loops()


class TestTimingRule:
    def test_leakydsp_caught_at_honest_clock(self, leaky_bs):
        _sensor, bs = leaky_bs
        findings = BitstreamChecker().check_timing(bs, declared_clock_hz=300e6)
        assert any(f.rule == "timing-abuse" for f in findings)

    def test_tdc_caught_at_honest_clock(self, tdc_bs):
        _sensor, bs = tdc_bs
        findings = BitstreamChecker().check_timing(bs, declared_clock_hz=300e6)
        assert any(f.rule == "timing-abuse" for f in findings)

    def test_rds_evades_netlist_level_timing_check(self):
        """RDS's entire sensing delay lives in routing detours, which a
        netlist-level timing check cannot see — the CHES'23 paper's own
        evasion argument.  Only a check over *routed* timing would
        catch it."""
        _sensor, bs = _bitstream(lambda d, n: RDS(device=d, seed=1, name=n), "rd")
        findings = BitstreamChecker().check_timing(bs, declared_clock_hz=300e6)
        assert not any(f.rule == "timing-abuse" for f in findings)

    def test_bypass_with_declared_slow_clock(self, leaky_bs):
        """The paper's Section V observation: timing checks only see
        declared constraints, so a tenant that generates its fast clock
        on-chip passes with the same bitstream."""
        _sensor, bs = leaky_bs
        findings = BitstreamChecker().check_timing(bs, declared_clock_hz=20e6)
        assert findings == []

    def test_loop_reported_as_timing_violation(self):
        _sensor, bs = _bitstream(
            lambda d, n: RingOscillatorSensor(device=d, name=n), "ro3"
        )
        findings = BitstreamChecker().check_timing(bs, declared_clock_hz=100e6)
        assert any(f.rule == "timing-loop" for f in findings)

    def test_finding_message_names_path(self, leaky_bs):
        _sensor, bs = leaky_bs
        findings = BitstreamChecker().check_timing(bs, declared_clock_hz=300e6)
        abuse = next(f for f in findings if f.rule == "timing-abuse")
        assert "ns" in abuse.message
        assert len(abuse.cells) == 2
