"""Tests for the pluggable compute-backend registry (``repro.backends``).

The load-bearing properties:

* the registry is capability-probing — unavailable backends are listed
  but not selectable, and selecting one fails with the probe's reason;
* backend selection composes: ``REPRO_BACKEND`` < ``activate_backend``
  < an explicit ``--kernel``/``accumulate=`` override;
* activating the ``numpy`` backend steers every seam to the pure-numpy
  oracle path (reference kernel, numpy fan-out sampler, per-byte CPA),
  and activation is reversible;
* third-party registration is guarded (reserved names, duplicates,
  active backends);
* the worker threadpool pinning never raises and honours
  ``REPRO_BLAS_THREADS``;
* when numba is present, its sampler and kernel are bit-identical to
  the fused path (the differential contract every backend must meet).
"""

import importlib.util
import os

import numpy as np
import pytest

from repro import backends
from repro.backends import (
    Backend,
    activate_backend,
    active_backend_name,
    all_backends,
    available_backends,
    cpa_accumulate_mode,
    default_backend_name,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.backends import threads as backend_threads
from repro.backends import numba_backend
from repro.errors import ConfigurationError, ReproError
from repro.kernels import aes_trace, default_kernel_name
from repro.kernels import fanout

HAVE_NUMBA = importlib.util.find_spec("numba") is not None


@pytest.fixture
def restore_backend_state():
    """Snapshot and restore every piece of backend process state."""
    prev_active = backends._ACTIVE[0]
    prev_default = aes_trace._DEFAULT_KERNEL
    prev_provider = fanout._SAMPLER_PROVIDER
    yield
    backends._ACTIVE[0] = prev_active
    aes_trace._DEFAULT_KERNEL = prev_default
    fanout._SAMPLER_PROVIDER = prev_provider


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_builtins_registered(self):
        assert {"fused", "numpy", "numba"} <= set(all_backends())

    def test_always_available_backends(self):
        avail = available_backends()
        assert "fused" in avail and "numpy" in avail

    def test_numba_availability_tracks_import(self):
        assert ("numba" in available_backends()) == (
            numba_backend.numba_unavailable_reason() is None
        )

    def test_unknown_backend_names_registered(self):
        with pytest.raises(ConfigurationError, match="fused"):
            get_backend("cuda")

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed")
    def test_unavailable_backend_reports_reason(self):
        with pytest.raises(ConfigurationError, match="numba is not installed"):
            get_backend("numba")

    def test_errors_are_repro_errors(self):
        with pytest.raises(ReproError):
            get_backend("nope")

    def test_register_requires_backend_instance(self):
        with pytest.raises(ConfigurationError):
            register_backend("fast")

    def test_register_rejects_reserved_names(self):
        for name in ("fused", "numpy", "numba"):
            with pytest.raises(ConfigurationError, match="reserved"):
                register_backend(Backend(name=name, description="", kernel="fused"))

    def test_register_rejects_bad_accumulate_mode(self):
        with pytest.raises(ConfigurationError, match="cpa_accumulate"):
            register_backend(
                Backend(
                    name="weird", description="", kernel="fused",
                    cpa_accumulate="sideways",
                )
            )

    def test_register_unregister_round_trip(self):
        backend = Backend(
            name="thirdparty", description="test", kernel="fused"
        )
        assert register_backend(backend) == "thirdparty"
        try:
            assert "thirdparty" in all_backends()
            assert get_backend("thirdparty") is backend
            with pytest.raises(ConfigurationError, match="already registered"):
                register_backend(backend)
            replacement = Backend(
                name="thirdparty", description="v2", kernel="fused"
            )
            register_backend(replacement, replace=True)
            assert get_backend("thirdparty") is replacement
        finally:
            unregister_backend("thirdparty")
        assert "thirdparty" not in all_backends()

    def test_unregister_guards(self, restore_backend_state):
        with pytest.raises(ConfigurationError, match="built-in"):
            unregister_backend("fused")
        with pytest.raises(ConfigurationError, match="unknown"):
            unregister_backend("ghost")
        register_backend(Backend(name="briefly", description="", kernel="fused"))
        try:
            activate_backend("briefly")
            with pytest.raises(ConfigurationError, match="active"):
                unregister_backend("briefly")
        finally:
            activate_backend("fused")
            unregister_backend("briefly")

    def test_probe_failure_keeps_backend_listed(self):
        backend = Backend(
            name="broken", description="", kernel="fused",
            probe=lambda: "no accelerator attached",
        )
        register_backend(backend)
        try:
            assert "broken" in all_backends()
            assert "broken" not in available_backends()
            with pytest.raises(ConfigurationError, match="no accelerator"):
                get_backend("broken")
        finally:
            unregister_backend("broken")


# ----------------------------------------------------------------------
# Selection and activation
# ----------------------------------------------------------------------


class TestSelection:
    def test_default_backend_is_fused(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_backend_name() == "fused"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert default_backend_name() == "numpy"
        assert active_backend_name() == "numpy"
        assert cpa_accumulate_mode() == "per-byte"

    def test_unknown_env_backend_fails_loudly_on_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "typo")
        with pytest.raises(ConfigurationError, match="typo"):
            get_backend()
        with pytest.raises(ConfigurationError, match="typo"):
            cpa_accumulate_mode()

    def test_explicit_accumulate_mode_passes_through(self):
        assert cpa_accumulate_mode("batched") == "batched"
        assert cpa_accumulate_mode("per-byte") == "per-byte"
        with pytest.raises(ConfigurationError, match="accumulate"):
            cpa_accumulate_mode("vectorized")

    def test_activate_numpy_steers_all_seams(
        self, restore_backend_state, monkeypatch
    ):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        backends._ACTIVE[0] = None
        previous = activate_backend("numpy")
        assert previous == "fused"
        assert active_backend_name() == "numpy"
        assert default_kernel_name() == "reference"
        assert fanout._active_sampler() is None  # C sampler bypassed
        assert cpa_accumulate_mode() == "per-byte"
        assert activate_backend(previous) == "numpy"
        assert default_kernel_name() == "fused"
        assert cpa_accumulate_mode() == "batched"

    def test_explicit_kernel_overrides_backend(self, restore_backend_state):
        activate_backend("numpy")
        aes_trace.set_default_kernel("fused")
        assert default_kernel_name() == "fused"  # finer-grained knob wins
        assert active_backend_name() == "numpy"

    def test_env_kernel_mapping(self):
        # REPRO_BACKEND=numpy must reach the kernel default even in
        # freshly spawned processes that never call activate_backend.
        assert aes_trace._ENV_BACKEND_KERNELS["numpy"] == "reference"
        assert aes_trace._ENV_BACKEND_KERNELS["fused"] == "fused"

    def test_cli_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["fig5", "--backend", "numpy"])
        assert args.backend == "numpy"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--backend", "cuda"])

    def test_cli_validates_env_backend_eagerly(
        self, restore_backend_state, monkeypatch, capsys
    ):
        # A mistyped REPRO_BACKEND must fail the CLI on *every*
        # experiment — including ones that never resolve a backend seam
        # — not silently compute on the default path.
        from repro.cli import main

        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        assert main(["pdn-validation", "--seed", "1"]) == 2
        assert "unknown backend 'bogus'" in capsys.readouterr().err

    def test_cli_unavailable_backend_is_clean_error(
        self, restore_backend_state, capsys
    ):
        # --backend resolution errors (e.g. numba not installed) must go
        # through the CLI's ReproError presentation, not a traceback.
        from repro.backends.numba_backend import numba_unavailable_reason
        from repro.cli import main

        if numba_unavailable_reason() is None:
            pytest.skip("numba installed; no unavailable builtin to test")
        assert main(["pdn-validation", "--backend", "numba"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "unavailable" in err


# ----------------------------------------------------------------------
# Threadpool pinning
# ----------------------------------------------------------------------


class TestThreads:
    def test_thread_env_vars_cover_all_runtimes(self):
        env = backend_threads.thread_env_vars(3)
        assert env["OMP_NUM_THREADS"] == "3"
        assert env["OPENBLAS_NUM_THREADS"] == "3"
        assert set(env) == set(backend_threads._ENV_VARS)

    def test_set_blas_threads_reports_and_sets_env(self, monkeypatch):
        for var in backend_threads._ENV_VARS:
            monkeypatch.delenv(var, raising=False)
        report = backend_threads.set_blas_threads(2)
        assert os.environ["OMP_NUM_THREADS"] == "2"
        assert all(threads == 2 for threads in report.values())

    def test_set_blas_threads_clamps_bad_counts(self, monkeypatch):
        monkeypatch.delenv("OMP_NUM_THREADS", raising=False)
        backend_threads.set_blas_threads(0)
        assert os.environ["OMP_NUM_THREADS"] == "1"

    def test_pin_worker_threads_defaults_to_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_BLAS_THREADS", raising=False)
        backend_threads.pin_worker_threads()
        assert os.environ["OMP_NUM_THREADS"] == "1"

    def test_pin_worker_threads_honours_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BLAS_THREADS", "4")
        backend_threads.pin_worker_threads()
        assert os.environ["OMP_NUM_THREADS"] == "4"

    def test_pin_worker_threads_survives_bad_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BLAS_THREADS", "lots")
        backend_threads.pin_worker_threads()
        assert os.environ["OMP_NUM_THREADS"] == "1"

    def test_pinning_actually_limits_a_loaded_runtime(self):
        # On this interpreter numpy's OpenBLAS (or an OMP runtime) is
        # loaded; the ctypes walk should find at least one setter, or
        # threadpoolctl should have reported pools.  Tolerate neither
        # (static BLAS builds) but require the call to stay silent.
        report = backend_threads.set_blas_threads(1)
        assert isinstance(report, dict)


# ----------------------------------------------------------------------
# numba backend
# ----------------------------------------------------------------------


class TestNumbaBackend:
    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed")
    def test_absent_numba_reports_not_installed(self):
        assert numba_backend.numba_unavailable_reason() == "numba is not installed"
        assert numba_backend.numba_sampler() is None

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed")
    def test_absent_numba_blocks_activation(self, restore_backend_state):
        with pytest.raises(ConfigurationError, match="numba"):
            activate_backend("numba")
        # Nothing was half-applied.
        assert active_backend_name() != "numba"

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_numba_sampler_passes_self_test(self):
        from repro.kernels._csampler import _self_test

        sampler = numba_backend.numba_sampler()
        assert sampler is not None
        assert _self_test(sampler)

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_numba_kernel_bit_identical_to_fused(
        self, basys3_device, restore_backend_state
    ):
        from repro.core.calibration import calibrate
        from repro.core.leaky_dsp import LeakyDSP
        from repro.fpga.placement import Pblock, Placer
        from repro.pdn.coupling import CouplingModel
        from repro.timing.sampling import ClockSpec
        from repro.traces.acquisition import AESTraceAcquisition
        from repro.victims.aes import AES128, AESHardwareModel

        activate_backend("numba")
        try:
            coupling = CouplingModel(basys3_device)
            placer = Placer(basys3_device)
            sensor = LeakyDSP(device=basys3_device, seed=7)
            sensor.place(
                placer,
                pblock=Pblock.from_region(basys3_device.region_by_name("X1Y0")),
            )
            calibrate(sensor, rng=0)
            hw = AESHardwareModel(ClockSpec(20e6), ClockSpec(300e6))

            def acquire(kernel):
                acq = AESTraceAcquisition(
                    sensor, coupling, hw, (10.0, 25.0), kernel=kernel
                )
                aes = AES128(bytes(range(16)))
                pts = np.random.default_rng(11).integers(
                    0, 256, (256, 16), dtype=np.uint8
                )
                return acq.acquire_block(
                    aes, pts, np.random.default_rng(11), acq.default_n_samples()
                )

            r_n, c_n = acquire("numba")
            r_f, c_f = acquire("fused")
            np.testing.assert_array_equal(r_n, r_f)
            np.testing.assert_array_equal(c_n, c_f)
        finally:
            activate_backend("fused")
