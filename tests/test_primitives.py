"""Tests for the vendor primitive models (LUT, FDRE, CARRY4, DSP48,
IDELAY)."""

import numpy as np
import pytest

from repro.errors import PrimitiveConfigError
from repro.fpga.primitives import (
    CARRY4,
    DSP48E1,
    DSP48E2,
    DSPStageDelays,
    FDRE,
    IDELAYE2,
    IDELAYE3,
    LUT,
    dsp_for_family,
    idelay_for_family,
    leakydsp_dsp,
    to_signed,
    to_unsigned,
)


class TestSignedHelpers:
    def test_to_signed_positive(self):
        assert to_signed(5, 8) == 5

    def test_to_signed_negative(self):
        assert to_signed(0xFF, 8) == -1
        assert to_signed(0x80, 8) == -128

    def test_to_signed_masks_extra_bits(self):
        assert to_signed(0x1FF, 8) == -1

    def test_to_unsigned_roundtrip(self):
        for value in (-1, -128, 0, 127):
            assert to_signed(to_unsigned(value, 8), 8) == value

    def test_wide_word(self):
        assert to_signed((1 << 48) - 1, 48) == -1


class TestLUT:
    def test_inverter(self):
        inv = LUT.inverter("i")
        assert inv.evaluate(0) == 1
        assert inv.evaluate(1) == 0

    def test_and2(self):
        gate = LUT.and2("a")
        assert gate.evaluate(1, 1) == 1
        assert gate.evaluate(0, 1) == 0
        assert gate.evaluate(1, 0) == 0
        assert gate.evaluate(0, 0) == 0

    def test_init_encoding_lut6(self):
        # INIT bit i = output for input pattern i.
        lut = LUT("x", k=3, init=0b10000000)  # 3-input AND
        assert lut.evaluate(1, 1, 1) == 1
        assert lut.evaluate(1, 1, 0) == 0

    def test_wrong_arity_raises(self):
        with pytest.raises(PrimitiveConfigError):
            LUT.inverter("i").evaluate(0, 1)

    def test_non_binary_input_raises(self):
        with pytest.raises(PrimitiveConfigError):
            LUT.inverter("i").evaluate(2)

    def test_oversized_init_raises(self):
        with pytest.raises(PrimitiveConfigError):
            LUT("x", k=1, init=0b100)

    def test_bad_k_raises(self):
        with pytest.raises(PrimitiveConfigError):
            LUT("x", k=0)
        with pytest.raises(PrimitiveConfigError):
            LUT("x", k=7)

    def test_inverting_feedthrough_detection(self):
        assert LUT.inverter("i").is_inverting_feedthrough
        buffer = LUT("b", k=1, init=0b10)
        assert not buffer.is_inverting_feedthrough


class TestFDRE:
    def test_clocking(self):
        ff = FDRE("ff")
        assert ff.clock(1) == 1
        assert ff.clock(0) == 0

    def test_reset_dominates(self):
        ff = FDRE("ff")
        ff.clock(1)
        assert ff.clock(1, r=1) == 0

    def test_clock_enable_holds(self):
        ff = FDRE("ff")
        ff.clock(1)
        assert ff.clock(0, ce=0) == 1

    def test_init_attribute(self):
        assert FDRE("ff", INIT=1).q == 1

    def test_bad_init_raises(self):
        with pytest.raises(PrimitiveConfigError):
            FDRE("ff", INIT=2)


class TestCARRY4:
    def test_propagates_when_selected(self):
        carry = CARRY4("c")
        assert carry.propagate(1) == [1, 1, 1, 1]

    def test_kills_on_deselected_stage(self):
        carry = CARRY4("c")
        assert carry.propagate(1, s=(1, 0, 1, 1)) == [1, 0, 0, 0]

    def test_zero_in_stays_zero(self):
        assert CARRY4("c").propagate(0) == [0, 0, 0, 0]

    def test_wrong_select_width_raises(self):
        with pytest.raises(PrimitiveConfigError):
            CARRY4("c").propagate(1, s=(1, 1))


class TestDSP48E1Validation:
    def test_leakydsp_config_valid(self):
        dsp = DSP48E1.leakydsp_config("d")
        assert dsp.attributes["USE_MULT"] == "MULTIPLY"
        assert dsp.is_fully_combinational

    def test_unknown_attribute_rejected(self):
        with pytest.raises(PrimitiveConfigError):
            DSP48E1("d", BOGUS=1)

    def test_illegal_attribute_value_rejected(self):
        with pytest.raises(PrimitiveConfigError):
            DSP48E1("d", AREG=3)

    def test_m_on_x_requires_m_on_y(self):
        with pytest.raises(PrimitiveConfigError):
            DSP48E1("d", OPMODE=0b0000001)  # X=M, Y=ZERO

    def test_m_requires_multiplier(self):
        with pytest.raises(PrimitiveConfigError):
            DSP48E1("d", OPMODE=0b0000101, USE_MULT="NONE")

    def test_dport_requires_multiplier(self):
        with pytest.raises(PrimitiveConfigError):
            DSP48E1("d", USE_DPORT="TRUE", USE_MULT="NONE", OPMODE=0b0110011)

    def test_reserved_z_encoding_rejected(self):
        with pytest.raises(PrimitiveConfigError):
            DSP48E1("d", OPMODE=0b1110000)

    def test_pipeline_depth(self):
        assert DSP48E1.leakydsp_config("d").pipeline_depth == 0
        assert DSP48E1.leakydsp_config("d", last=True).pipeline_depth == 1
        registered = DSP48E1("d", AREG=1, MREG=1, PREG=1, OPMODE=0b0000101)
        assert registered.pipeline_depth == 3

    def test_opmode_selection_decoding(self):
        dsp = DSP48E1.leakydsp_config("d")
        assert dsp.opmode_selection == ("M", "M", "ZERO")


class TestDSP48E1Compute:
    def test_identity_function(self):
        dsp = DSP48E1.leakydsp_config("d")
        assert dsp.compute(a=5, b=1) == 5

    def test_identity_all_ones_sign_extends(self):
        dsp = DSP48E1.leakydsp_config("d")
        all_ones_25 = (1 << 25) - 1  # -1 as a 25-bit word
        p = dsp.compute(a=all_ones_25, b=1)
        assert p == (1 << 48) - 1  # -1 sign-extended to 48 bits

    def test_pre_adder_adds_d(self):
        dsp = DSP48E1.leakydsp_config("d")
        assert dsp.compute(a=10, b=1, d=7) == 17

    def test_multiply(self):
        dsp = DSP48E1.leakydsp_config("d")
        assert dsp.compute(a=6, b=7) == 42

    def test_signed_multiply(self):
        dsp = DSP48E1.leakydsp_config("d")
        minus_two = to_unsigned(-2, 25)
        assert to_signed(dsp.compute(a=minus_two, b=3), 48) == -6

    def test_c_addition_via_z_mux(self):
        dsp = DSP48E1("d", USE_MULT="MULTIPLY", OPMODE=0b0110101)  # Z=C, XY=M
        assert dsp.compute(a=4, b=5, c=100) == 120

    def test_subtract_alumode(self):
        dsp = DSP48E1(
            "d", USE_MULT="MULTIPLY", OPMODE=0b0110101, ALUMODE=0b0011
        )  # C - M
        assert dsp.compute(a=4, b=5, c=100) == 80

    def test_pcin_cascade_path(self):
        dsp = DSP48E1("d", USE_MULT="MULTIPLY", OPMODE=0b0010101)  # Z=PCIN
        assert dsp.compute(a=2, b=3, pcin=1000) == 1006

    def test_ab_concatenation(self):
        dsp = DSP48E1("d", USE_MULT="NONE", OPMODE=0b0000011)  # X=A:B
        assert dsp.compute(a=1, b=2) == (1 << 18) | 2

    def test_carryin(self):
        dsp = DSP48E1.leakydsp_config("d")
        assert dsp.compute(a=5, b=1, carryin=1) == 6

    def test_accumulator_mode(self):
        # Z = P: P' = P + M, the MACC configuration.
        dsp = DSP48E1("d", USE_MULT="MULTIPLY", OPMODE=0b0100101)
        p = 0
        for _ in range(4):
            p = dsp.compute(a=3, b=5, p_prev=p)
        assert p == 4 * 15

    def test_p17_shift_path(self):
        # Z = P>>17: the cascade-shift mode of systolic filters.
        dsp = DSP48E1("d", USE_MULT="MULTIPLY", OPMODE=0b1000101)
        p = dsp.compute(a=0, b=0, p_prev=(1 << 20))
        assert p == 1 << 3

    def test_ones_on_y_mux(self):
        # Y = all-ones with X = 0, Z = 0: P = -1 (two's complement).
        dsp = DSP48E1("d", USE_MULT="NONE", OPMODE=0b0001000)
        assert dsp.compute() == (1 << 48) - 1

    def test_negate_z_alumode(self):
        # ALUMODE 0b0001: -Z + X + CIN - 1.
        dsp = DSP48E1("d", USE_MULT="NONE", OPMODE=0b0110000, ALUMODE=0b0001)
        result = to_signed(dsp.compute(c=10), 48)
        assert result == -10 - 1

    def test_negate_all_alumode(self):
        # ALUMODE 0b0010: -(Z + X + Y + CIN) - 1.
        dsp = DSP48E1("d", USE_MULT="NONE", OPMODE=0b0110000, ALUMODE=0b0010)
        result = to_signed(dsp.compute(c=10), 48)
        assert result == -10 - 1


class TestDSP48E2:
    def test_wider_mult_operand(self):
        assert DSP48E2.A_MULT_WIDTH == 27
        assert DSP48E2.D_WIDTH == 27

    def test_identity_on_27_bits(self):
        dsp = DSP48E2.leakydsp_config("d")
        value = (1 << 26) + 12345  # negative as a 27-bit word
        p = dsp.compute(a=value, b=1)
        assert p & ((1 << 27) - 1) == value  # identity on the low word
        assert to_signed(p, 48) == to_signed(value, 27)  # sign-extended

    def test_identity_on_26_bit_positive(self):
        dsp = DSP48E2.leakydsp_config("d")
        value = (1 << 25) + 999  # positive: needs E2's wider operand
        assert dsp.compute(a=value, b=1) == value

    def test_family_factory(self):
        assert isinstance(dsp_for_family("DSP48E1", "a"), DSP48E1)
        assert isinstance(dsp_for_family("DSP48E2", "b"), DSP48E2)
        with pytest.raises(PrimitiveConfigError):
            dsp_for_family("DSP99", "c")

    def test_leakydsp_factory(self):
        assert leakydsp_dsp("DSP48E2", "d").TYPE == "DSP48E2"
        with pytest.raises(PrimitiveConfigError):
            leakydsp_dsp("DSP47", "d")


class TestStageDelays:
    def test_fully_combinational_has_three_stages(self):
        dsp = DSP48E1.leakydsp_config("d")
        stages = dict(dsp.stage_delays())
        assert set(stages) == {"pre_adder", "multiplier", "alu"}

    def test_registered_a_path_has_no_comb_stages(self):
        dsp = DSP48E1("d", AREG=1, OPMODE=0b0000101)
        assert dsp.stage_delays() == []

    def test_mreg_cuts_multiplier_and_alu(self):
        dsp = DSP48E1("d", MREG=1, USE_DPORT="TRUE", OPMODE=0b0000101)
        assert dict(dsp.stage_delays()).keys() == {"pre_adder"}

    def test_total_default(self):
        delays = DSPStageDelays()
        assert delays.total == pytest.approx(
            delays.pre_adder + delays.multiplier + delays.alu
        )


class TestIDELAY:
    def test_tap_load_and_delay(self):
        d = IDELAYE2("d", IDELAY_TYPE="VAR_LOAD")
        d.load_tap(10)
        assert d.tap == 10
        assert d.delay() == pytest.approx(10 * d.tap_delay)

    def test_fixed_mode_rejects_load(self):
        d = IDELAYE2("d", IDELAY_TYPE="FIXED", IDELAY_VALUE=5)
        with pytest.raises(PrimitiveConfigError):
            d.load_tap(1)
        assert d.delay() == pytest.approx(5 * d.tap_delay)

    def test_out_of_range_tap_rejected(self):
        d = IDELAYE2("d")
        with pytest.raises(PrimitiveConfigError):
            d.load_tap(32)
        with pytest.raises(PrimitiveConfigError):
            d.load_tap(-1)

    def test_refclk_scales_tap_delay(self):
        slow = IDELAYE2("a", REFCLK_FREQUENCY=200.0)
        fast = IDELAYE2("b", REFCLK_FREQUENCY=400.0)
        assert fast.tap_delay == pytest.approx(slow.tap_delay / 2)

    def test_idelaye3_finer_and_wider(self):
        e3 = IDELAYE3("d")
        e2 = IDELAYE2("d2")
        assert e3.NUM_TAPS > e2.NUM_TAPS
        assert e3.tap_delay < e2.tap_delay

    def test_idelaye3_count_mode_refclk_independent(self):
        a = IDELAYE3("a", REFCLK_FREQUENCY=200.0)
        b = IDELAYE3("b", REFCLK_FREQUENCY=500.0)
        assert a.tap_delay == b.tap_delay

    def test_max_delay_covers_half_sensor_period(self):
        # The calibration range must span ~T/2 of the 300 MHz clock.
        d = IDELAYE2("d")
        assert d.max_delay > 0.5 / 300e6 * 0.9

    def test_family_factory(self):
        assert isinstance(idelay_for_family("IDELAYE2", "a"), IDELAYE2)
        assert isinstance(idelay_for_family("IDELAYE3", "b"), IDELAYE3)
        with pytest.raises(PrimitiveConfigError):
            idelay_for_family("IDELAY9", "c")
