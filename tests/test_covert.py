"""Tests for the covert channel."""

import numpy as np
import pytest

from repro.attacks.covert import CovertChannel, CovertChannelConfig
from repro.core.calibration import calibrate
from repro.core.leaky_dsp import LeakyDSP
from repro.errors import CovertChannelError
from repro.fpga.placement import Pblock, Placer
from repro.pdn.coupling import CouplingModel
from repro.victims.power_virus import PowerVirusBank


def _make_channel(zu3eg_device, config=None):
    coupling = CouplingModel(zu3eg_device)
    placer = Placer(zu3eg_device)
    virus = PowerVirusBank(zu3eg_device, 8000, 8)
    virus.place(placer, [Pblock("sender", 0, 0, 63, 95)])
    sensor = LeakyDSP(device=zu3eg_device, seed=7)
    sensor.place(
        placer, pblock=Pblock.from_region(zu3eg_device.region_by_name("X0Y2"))
    )
    calibrate(sensor, rng=0)
    return CovertChannel(sensor, coupling, virus, config=config)


@pytest.fixture(scope="module")
def channel(zu3eg_device):
    return _make_channel(zu3eg_device)


@pytest.fixture(scope="module")
def clean_channel(zu3eg_device):
    cfg = CovertChannelConfig(lf_noise_rms=0.0, white_noise_rms=0.0)
    return _make_channel(zu3eg_device, cfg)


class TestTransmission:
    def test_noiseless_is_error_free(self, clean_channel, rng):
        payload = rng.integers(0, 2, 500)
        result = clean_channel.transmit(payload, 4e-3, rng=0)
        assert result.n_errors == 0
        np.testing.assert_array_equal(result.decoded, payload)

    def test_noisy_mostly_correct(self, channel, rng):
        payload = rng.integers(0, 2, 2000)
        result = channel.transmit(payload, 4e-3, rng=1)
        assert result.ber < 0.05

    def test_ber_property(self, clean_channel, rng):
        result = clean_channel.transmit(rng.integers(0, 2, 100), 4e-3, rng=0)
        assert result.ber == result.n_errors / 100

    def test_empty_payload_rejected(self, channel):
        with pytest.raises(CovertChannelError):
            channel.transmit(np.array([]), 4e-3)

    def test_non_binary_payload_rejected(self, channel):
        with pytest.raises(CovertChannelError):
            channel.transmit(np.array([0, 1, 2]), 4e-3)

    def test_nonpositive_bit_time_rejected(self, channel):
        with pytest.raises(CovertChannelError):
            channel.samples_per_bit(0.0)

    def test_too_fast_bit_time_rejected(self, channel):
        with pytest.raises(CovertChannelError):
            channel.samples_per_bit(1e-5)

    def test_all_zero_and_all_one_payloads(self, clean_channel):
        for bit in (0, 1):
            payload = np.full(64, bit)
            result = clean_channel.transmit(payload, 4e-3, rng=0)
            assert result.n_errors == 0


class TestRates:
    def test_paper_rate_at_4ms(self, channel, rng):
        result = channel.transmit(rng.integers(0, 2, 10_000), 4e-3, rng=2)
        assert result.transmission_rate == pytest.approx(247.94, abs=0.01)

    def test_rate_inverse_in_bit_time(self, clean_channel, rng):
        payload = rng.integers(0, 2, 200)
        fast = clean_channel.transmit(payload, 2e-3, rng=0)
        slow = clean_channel.transmit(payload, 4e-3, rng=0)
        assert fast.transmission_rate == pytest.approx(
            2 * slow.transmission_rate, rel=1e-6
        )

    def test_overhead_reduces_rate_below_raw(self, channel, rng):
        result = channel.transmit(rng.integers(0, 2, 1000), 4e-3, rng=3)
        assert result.transmission_rate < 250.0


class TestBerVsBitTime:
    def test_longer_bits_fewer_errors(self, zu3eg_device):
        cfg = CovertChannelConfig(lf_noise_rms=9e-3)
        noisy = _make_channel(zu3eg_device, cfg)
        rng = np.random.default_rng(5)
        short = np.mean(
            [noisy.transmit(rng.integers(0, 2, 3000), 2e-3, rng=rng).ber
             for _ in range(3)]
        )
        long = np.mean(
            [noisy.transmit(rng.integers(0, 2, 3000), 7.5e-3, rng=rng).ber
             for _ in range(3)]
        )
        assert long < short


class TestSweep:
    def test_sweep_shapes(self, channel):
        results = channel.sweep_bit_times([3e-3, 4e-3], payload_bits=200, n_runs=2, rng=0)
        assert len(results) == 4
        assert {r.bit_time for r in results} == {3e-3, 4e-3}


class TestSetupValidation:
    def test_droop_on_positive(self, channel):
        assert channel.droop_on > 0

    def test_unplaced_sensor_rejected(self, zu3eg_device):
        coupling = CouplingModel(zu3eg_device)
        placer = Placer(zu3eg_device)
        virus = PowerVirusBank(zu3eg_device, 80, 8)
        virus.place(placer, [Pblock("s", 0, 0, 63, 95)])
        sensor = LeakyDSP(device=zu3eg_device, seed=7)
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CovertChannel(sensor, coupling, virus)
