"""Tests for the fan-out acquisition API.

The load-bearing contract: fanning one AES+PDN pass out to N sensors
is purely a cost optimization — every per-sensor result is
bit-identical to the N independent single-sensor runs it replaces, at
every kernel, worker count and chunking.  Alongside the differential
tests this module covers the :class:`AcquisitionSpec` construction
path (including the deprecated positional shim), the
:class:`MultiSensorAcquisition` validation rules, the engine's fan-out
campaign methods, the per-sensor sub-block cache accounting, and the
backend-registration seam.
"""

import dataclasses
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.metrics import streamed_rank_curve, streamed_rank_curves
from repro.errors import AcquisitionError, ConfigurationError
from repro.kernels import (
    AcquisitionKernel,
    FusedAcquisitionKernel,
    available_kernels,
    get_kernel,
    register_kernel,
    unregister_kernel,
)
from repro.kernels import fanout
from repro.pdn.noise import NoiseModel
from repro.runtime import Engine
from repro.traces.acquisition import (
    AcquisitionSpec,
    AESTraceAcquisition,
    MultiSensorAcquisition,
)
from repro.traces.blockstore import BlockStore, peek_block_meta
from repro.experiments import common
from repro.victims.aes import AES128

KEY = bytes(range(16))
PLACEMENTS = ("P1", "P2", "P6")
N_TRACES = 600
SHARD = 256


@pytest.fixture(scope="module")
def specs():
    """Three placement specs sharing one hardware/noise configuration
    and the default kernel instance."""
    return common.placement_specs(PLACEMENTS)


@pytest.fixture(scope="module")
def multi(specs):
    return MultiSensorAcquisition(specs)


def solo_harnesses(specs):
    """Independent single-sensor harnesses over the same sensors."""
    return [spec.build() for spec in specs]


def fresh_rng(seed=0):
    return np.random.default_rng(seed)


# ----------------------------------------------------------------------
# AcquisitionSpec and the deprecated positional shim
# ----------------------------------------------------------------------


class TestAcquisitionSpec:
    def test_spec_build_no_warning(self, specs):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            acq = specs[0].build()
            also = AESTraceAcquisition(spec=specs[0])
        assert acq.sensor is specs[0].sensor
        assert also.sensor is specs[0].sensor
        assert acq.kernel is get_kernel(None)

    def test_positional_construction_warns_and_matches_spec(self, specs):
        spec = specs[0]
        with pytest.warns(DeprecationWarning, match="AcquisitionSpec"):
            legacy = AESTraceAcquisition(
                spec.sensor, spec.coupling, spec.hw_model, spec.aes_position
            )
        built = spec.build()
        assert legacy.sensor is built.sensor
        assert legacy.coupling is built.coupling
        assert legacy.hw_model is built.hw_model
        assert legacy.kernel is built.kernel
        assert legacy.noise.cache_token() == built.noise.cache_token()

    def test_keyword_construction_warns_too(self, specs):
        spec = specs[0]
        with pytest.warns(DeprecationWarning):
            AESTraceAcquisition(
                sensor=spec.sensor,
                coupling=spec.coupling,
                hw_model=spec.hw_model,
                aes_position=spec.aes_position,
            )

    def test_spec_plus_args_rejected(self, specs):
        with pytest.raises(TypeError, match="does not accept"):
            AESTraceAcquisition(specs[0].sensor, spec=specs[0])
        with pytest.raises(TypeError, match="does not accept"):
            AESTraceAcquisition(spec=specs[0], kernel="fused")

    def test_spec_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="AcquisitionSpec"):
            AESTraceAcquisition(spec="not a spec")

    def test_spec_property_is_normalized(self, specs):
        acq = specs[0].build()
        normalized = acq.spec
        assert normalized.noise is acq.noise
        assert normalized.kernel is acq.kernel
        rebuilt = normalized.build()
        assert rebuilt.kernel is acq.kernel
        assert rebuilt.noise is acq.noise


# ----------------------------------------------------------------------
# MultiSensorAcquisition construction and validation
# ----------------------------------------------------------------------


class TestMultiSensorValidation:
    def test_container_protocol(self, multi, specs):
        assert len(multi) == len(specs)
        assert [a.sensor for a in multi] == [s.sensor for s in specs]
        assert multi[1].sensor is specs[1].sensor

    def test_accepts_mixed_specs_and_harnesses(self, specs):
        msa = MultiSensorAcquisition([specs[0], specs[1].build()])
        assert len(msa) == 2
        assert msa.kernel is get_kernel(None)

    def test_empty_rejected(self):
        with pytest.raises(AcquisitionError, match="at least one"):
            MultiSensorAcquisition([])

    def test_bad_entry_type_rejected(self, specs):
        with pytest.raises(AcquisitionError, match="AcquisitionSpec"):
            MultiSensorAcquisition([specs[0], "P6"])

    def test_hw_model_mismatch_rejected(self, specs):
        other = common.placement_spec("P2", aes_clock=common.ClockSpec(50e6))
        with pytest.raises(AcquisitionError, match="hardware-model"):
            MultiSensorAcquisition([specs[0], other])

    def test_noise_mismatch_rejected(self, specs):
        loud = dataclasses.replace(
            specs[1], noise=NoiseModel(white_rms=0.5, drift_rms=0.0)
        )
        with pytest.raises(AcquisitionError, match="noise-model"):
            MultiSensorAcquisition([specs[0], loud])

    def test_kernel_instance_mismatch_rejected(self, specs):
        private = dataclasses.replace(specs[1], kernel=FusedAcquisitionKernel())
        with pytest.raises(AcquisitionError, match="kernel instance"):
            MultiSensorAcquisition([specs[0], private])

    def test_cache_tokens_match_standalone(self, multi, specs):
        tokens = multi.cache_tokens()
        assert tokens == [s.build().cache_token() for s in specs]


# ----------------------------------------------------------------------
# Kernel-level differential: acquire_many == N independent acquires
# ----------------------------------------------------------------------


def with_kernel(specs, name):
    kernel = get_kernel(name)
    return [dataclasses.replace(spec, kernel=kernel) for spec in specs]


class TestAcquireMany:
    @pytest.mark.parametrize("kernel_name", sorted(available_kernels()))
    def test_bit_identical_to_independent(self, specs, kernel_name):
        msa = MultiSensorAcquisition(with_kernel(specs, kernel_name))
        n_samples = msa.default_n_samples()
        aes = AES128(KEY)
        pts = fresh_rng(11).integers(0, 256, size=(96, 16), dtype=np.uint8)

        results = msa.acquire_block_many(aes, pts, fresh_rng(5), n_samples)
        for harness, (readouts, cts) in zip(msa, results):
            solo_r, solo_c = msa.kernel.acquire(
                harness, aes, pts, fresh_rng(5), n_samples
            )
            np.testing.assert_array_equal(readouts, solo_r)
            np.testing.assert_array_equal(cts, solo_c)

    @pytest.mark.parametrize("kernel_name", sorted(available_kernels()))
    def test_rng_end_state_matches_one_acquire(self, specs, kernel_name):
        msa = MultiSensorAcquisition(with_kernel(specs, kernel_name))
        n_samples = msa.default_n_samples()
        aes = AES128(KEY)
        pts = fresh_rng(11).integers(0, 256, size=(64, 16), dtype=np.uint8)

        rng_many = fresh_rng(5)
        msa.acquire_block_many(aes, pts, rng_many, n_samples)
        rng_one = fresh_rng(5)
        msa.kernel.acquire(msa[0], aes, pts, rng_one, n_samples)
        assert rng_many.bit_generator.state == rng_one.bit_generator.state

    def test_skip_yields_none_and_preserves_rest(self, multi):
        n_samples = multi.default_n_samples()
        aes = AES128(KEY)
        pts = fresh_rng(11).integers(0, 256, size=(64, 16), dtype=np.uint8)

        full = multi.acquire_block_many(aes, pts, fresh_rng(5), n_samples)
        skipped = multi.acquire_block_many(
            aes, pts, fresh_rng(5), n_samples, skip={1}
        )
        assert skipped[1] is None
        for index in (0, 2):
            np.testing.assert_array_equal(skipped[index][0], full[index][0])
            np.testing.assert_array_equal(skipped[index][1], full[index][1])

    def test_numpy_fallback_bit_identical(self, multi, monkeypatch):
        """Force the tiled numpy sampler and re-check the contract —
        the C inner loop must be an invisible optimization."""
        n_samples = multi.default_n_samples()
        aes = AES128(KEY)
        pts = fresh_rng(11).integers(0, 256, size=(96, 16), dtype=np.uint8)

        with_c = multi.acquire_block_many(aes, pts, fresh_rng(5), n_samples)
        monkeypatch.setattr(fanout, "_active_sampler", lambda: None)
        without_c = multi.acquire_block_many(aes, pts, fresh_rng(5), n_samples)
        for got, expected in zip(without_c, with_c):
            np.testing.assert_array_equal(got[0], expected[0])
            np.testing.assert_array_equal(got[1], expected[1])

    @settings(max_examples=10)
    @given(indices=st.lists(st.integers(0, 2), min_size=1, max_size=4))
    def test_any_subset_fans_out_identically(self, specs, indices):
        """Property: any (ordered, possibly repeating) selection of
        sensors fans out bit-identically to independent runs."""
        pool = solo_harnesses(specs)
        chosen = [pool[i] for i in indices]
        kernel = chosen[0].kernel
        n_samples = chosen[0].default_n_samples()
        aes = AES128(KEY)
        pts = fresh_rng(11).integers(0, 256, size=(48, 16), dtype=np.uint8)

        results = kernel.acquire_many(chosen, aes, pts, fresh_rng(5), n_samples)
        for harness, (readouts, cts) in zip(chosen, results):
            solo_r, solo_c = kernel.acquire(
                harness, aes, pts, fresh_rng(5), n_samples
            )
            np.testing.assert_array_equal(readouts, solo_r)
            np.testing.assert_array_equal(cts, solo_c)


# ----------------------------------------------------------------------
# Serial fan-out collection
# ----------------------------------------------------------------------


class TestSerialCollect:
    def test_collect_matches_standalone(self, multi, specs):
        trace_sets = multi.collect(300, key=KEY, rng=9, chunk_size=128)
        assert len(trace_sets) == len(specs)
        for spec, ts in zip(specs, trace_sets):
            solo = spec.build().collect(300, key=KEY, rng=9, chunk_size=128)
            np.testing.assert_array_equal(ts.traces, solo.traces)
            np.testing.assert_array_equal(ts.plaintexts, solo.plaintexts)
            np.testing.assert_array_equal(ts.ciphertexts, solo.ciphertexts)
            assert ts.metadata["sensor"] == solo.metadata["sensor"]

    def test_shared_plaintext_arrays(self, multi):
        trace_sets = multi.collect(120, key=KEY, rng=9, chunk_size=64)
        assert all(ts.plaintexts is trace_sets[0].plaintexts for ts in trace_sets)
        assert all(ts.ciphertexts is trace_sets[0].ciphertexts for ts in trace_sets)


# ----------------------------------------------------------------------
# Engine fan-out campaigns
# ----------------------------------------------------------------------


class TestEngineFanout:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_collect_many_matches_collect(self, multi, specs, workers):
        engine = Engine(workers=workers, shard_size=SHARD)
        fanned = engine.collect_many(multi, N_TRACES, key=KEY, seed=5)
        for spec, ts in zip(specs, fanned):
            solo = Engine(workers=1, shard_size=SHARD).collect(
                spec.build(), N_TRACES, key=KEY, seed=5
            )
            np.testing.assert_array_equal(ts.traces, solo.traces)
            np.testing.assert_array_equal(ts.plaintexts, solo.plaintexts)
            np.testing.assert_array_equal(ts.ciphertexts, solo.ciphertexts)

    def test_collect_many_accepts_plain_sequence(self, specs):
        engine = Engine(workers=1, shard_size=SHARD)
        fanned = engine.collect_many(list(specs), 200, key=KEY, seed=5)
        assert len(fanned) == len(specs)

    @pytest.mark.parametrize("workers,chunk", [(1, None), (2, 128)])
    def test_streamed_curves_match_single_stream(self, multi, specs, workers, chunk):
        checkpoints = [200, 400, 600]
        window = common.last_round_window(
            specs[0].hw_model, multi.default_n_samples()
        )
        engine = Engine(workers=workers, shard_size=SHARD)
        pairs = streamed_rank_curves(
            engine, multi, N_TRACES, key=KEY, checkpoints=checkpoints,
            seed=5, sample_window=window, chunk_size=chunk,
        )
        assert len(pairs) == len(specs)
        for spec, (curve, attack) in zip(specs, pairs):
            solo_curve, solo_attack = streamed_rank_curve(
                Engine(workers=1, shard_size=SHARD), spec.build(), N_TRACES,
                key=KEY, checkpoints=checkpoints, seed=5,
                sample_window=window, chunk_size=chunk,
            )
            for got, expected in zip(curve.as_arrays(), solo_curve.as_arrays()):
                np.testing.assert_array_equal(got, expected)
            assert attack.n_traces == solo_attack.n_traces

    def test_checkpoint_callback_order(self, multi):
        engine = Engine(workers=1, shard_size=SHARD)
        seen = []

        class Consumer:
            def update(self, traces, pts):
                pass

            def merge(self, other):
                return self

        engine.stream_attack_many(
            multi, 512, key=KEY, consumer_factory=Consumer, seed=5,
            checkpoints=[256, 512],
            on_checkpoint=lambda index, done, acc: seen.append((index, done)),
        )
        n = len(multi)
        assert seen == [(i, 256) for i in range(n)] + [(i, 512) for i in range(n)]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_characterize_many_matches_characterize(self, workers):
        setup = common.Basys3Setup.create()
        virus = common.make_virus(setup, n_instances=800, n_groups=4)
        sensors = common.region_sensors(setup, seed=7)[:3]
        engine = Engine(workers=workers, shard_size=SHARD)
        outs = engine.characterize_many(
            sensors, setup.coupling, virus, 2, 600, seed=5
        )
        for sensor, out in zip(sensors, outs):
            solo = Engine(workers=1, shard_size=SHARD).characterize(
                sensor, setup.coupling, virus, 2, 600, seed=5
            )
            np.testing.assert_array_equal(out, solo)

    def test_characterize_many_rejects_empty(self):
        setup = common.Basys3Setup.create()
        virus = common.make_virus(setup, n_instances=800, n_groups=4)
        with pytest.raises(ConfigurationError):
            Engine(workers=1).characterize_many([], setup.coupling, virus, 0, 100)


# ----------------------------------------------------------------------
# Per-sensor sub-block caching
# ----------------------------------------------------------------------


class TestFanoutCache:
    def test_cold_warm_and_cross_compat(self, multi, specs, tmp_path):
        n_shards = -(-N_TRACES // SHARD)
        n_sensors = len(specs)

        cold = Engine(workers=1, shard_size=SHARD, cache=str(tmp_path))
        cold_sets = cold.collect_many(multi, N_TRACES, key=KEY, seed=5)
        assert cold.cache_totals["misses"] == n_shards
        assert cold.cache_totals["sub_misses"] == n_shards * n_sensors
        assert cold.cache_totals["sub_hits"] == 0

        warm = Engine(workers=1, shard_size=SHARD, cache=str(tmp_path))
        warm_sets = warm.collect_many(multi, N_TRACES, key=KEY, seed=5)
        assert warm.cache_totals["hits"] == n_shards
        assert warm.cache_totals["sub_hits"] == n_shards * n_sensors
        assert warm.cache_totals["misses"] == 0
        for a, b in zip(cold_sets, warm_sets):
            np.testing.assert_array_equal(a.traces, b.traces)

        # Fan-out sub-blocks use exactly the single-sensor keys: a
        # standalone campaign over one member is served fully warm.
        single = Engine(workers=1, shard_size=SHARD, cache=str(tmp_path))
        solo = single.collect(specs[1].build(), N_TRACES, key=KEY, seed=5)
        assert single.cache_totals["hits"] == n_shards
        assert single.cache_totals["misses"] == 0
        np.testing.assert_array_equal(solo.traces, cold_sets[1].traces)

    def test_partial_shard_accounting(self, multi, specs, tmp_path):
        n_shards = -(-N_TRACES // SHARD)
        n_sensors = len(specs)

        # Warm exactly one sensor's sub-blocks, then fan out.
        single = Engine(workers=1, shard_size=SHARD, cache=str(tmp_path))
        single.collect(specs[0].build(), N_TRACES, key=KEY, seed=5)

        engine = Engine(workers=1, shard_size=SHARD, cache=str(tmp_path))
        engine.collect_many(multi, N_TRACES, key=KEY, seed=5)
        assert engine.cache_totals["partial"] == n_shards
        assert engine.cache_totals["hits"] == 0
        assert engine.cache_totals["misses"] == 0
        assert engine.cache_totals["sub_hits"] == n_shards
        assert engine.cache_totals["sub_misses"] == n_shards * (n_sensors - 1)

        summary = engine.last_metrics.cache_summary()
        for field in ("partial", "sub_hits", "sub_misses"):
            assert field in summary
        assert "partial" in engine.last_metrics.summary()

    def test_store_reports_fanout_blocks(self, multi, tmp_path):
        engine = Engine(workers=1, shard_size=SHARD, cache=str(tmp_path))
        engine.collect_many(multi, N_TRACES, key=KEY, seed=5)
        store = BlockStore(tmp_path)
        stats = store.stats()
        assert stats.n_blocks > 0
        assert stats.fanout_blocks == stats.n_blocks
        assert "from fan-out" in stats.summary()

    def test_peek_block_meta(self, multi, tmp_path):
        engine = Engine(workers=1, shard_size=SHARD, cache=str(tmp_path))
        engine.collect_many(multi, N_TRACES, key=KEY, seed=5)
        store = BlockStore(tmp_path)
        metas = [peek_block_meta(p) for p in store._iter_block_paths()]
        fanouts = [m["fanout"] for m in metas if "fanout" in m]
        assert fanouts and all(f["sensors"] == len(multi) for f in fanouts)
        assert sorted({f["index"] for f in fanouts}) == list(range(len(multi)))

    def test_peek_block_meta_rejects_malformed(self, tmp_path):
        bad = tmp_path / "bad.block"
        bad.write_bytes(b"not a block at all")
        with pytest.raises(ValueError):
            peek_block_meta(bad)


# ----------------------------------------------------------------------
# Backend registration
# ----------------------------------------------------------------------


class TestKernelRegistry:
    def test_register_and_use_custom_backend(self, specs):
        class TracingKernel(FusedAcquisitionKernel):
            name = "tracing"

        registered = register_kernel(TracingKernel)
        try:
            assert registered == "tracing"
            kernel = get_kernel("tracing")
            assert isinstance(kernel, TracingKernel)
            acq = dataclasses.replace(specs[0], kernel="tracing").build()
            assert acq.kernel is kernel
        finally:
            unregister_kernel("tracing")
        with pytest.raises(ConfigurationError):
            get_kernel("tracing")

    def test_builtin_names_are_reserved(self):
        class Impostor(FusedAcquisitionKernel):
            name = "fused"

        with pytest.raises(ConfigurationError, match="reserved"):
            register_kernel(Impostor)
        with pytest.raises(ConfigurationError, match="built-in"):
            unregister_kernel("fused")

    def test_register_rejects_non_kernel(self):
        with pytest.raises(ConfigurationError, match="subclass"):
            register_kernel(dict)

    def test_duplicate_registration_needs_replace(self):
        class First(FusedAcquisitionKernel):
            name = "dup-test"

        class Second(FusedAcquisitionKernel):
            name = "dup-test"

        register_kernel(First)
        try:
            with pytest.raises(ConfigurationError, match="already registered"):
                register_kernel(Second)
            register_kernel(Second, replace=True)
            assert isinstance(get_kernel("dup-test"), Second)
        finally:
            unregister_kernel("dup-test")
