"""Tests for the bitstream checker and the active fence."""

import numpy as np
import pytest

from repro.core.leaky_dsp import LeakyDSP
from repro.defense.checker import BitstreamChecker, Finding
from repro.defense.fence import ActiveFence
from repro.errors import ConfigurationError
from repro.fpga.bitstream import generate_bitstream
from repro.fpga.device import xc7a35t
from repro.fpga.placement import Placer
from repro.pdn.coupling import CouplingModel
from repro.pdn.noise import NoiseModel
from repro.sensors.ro import RingOscillatorSensor
from repro.sensors.tdc import TDC


def _bitstream_for(sensor_factory):
    device = xc7a35t()
    sensor = sensor_factory(device)
    placement = sensor.place(Placer(device))
    return generate_bitstream(sensor.netlist(), placement)


@pytest.fixture(scope="module")
def ro_bitstream():
    return _bitstream_for(lambda d: RingOscillatorSensor(device=d, name="ro"))


@pytest.fixture(scope="module")
def tdc_bitstream():
    return _bitstream_for(lambda d: TDC(device=d, seed=1, name="tdc"))


@pytest.fixture(scope="module")
def leakydsp_bitstream():
    return _bitstream_for(lambda d: LeakyDSP(device=d, seed=1, name="leaky"))


class TestTodayRules:
    def test_ro_rejected_for_comb_loop(self, ro_bitstream):
        findings = BitstreamChecker().check(ro_bitstream)
        assert any(f.rule == "comb-loop" for f in findings)

    def test_tdc_rejected_for_carry_sampler(self, tdc_bitstream):
        findings = BitstreamChecker().check(tdc_bitstream)
        assert any(f.rule == "carry-sampler" for f in findings)

    def test_leakydsp_accepted(self, leakydsp_bitstream):
        assert BitstreamChecker().accepts(leakydsp_bitstream)

    def test_findings_name_cells(self, ro_bitstream):
        findings = BitstreamChecker().check(ro_bitstream)
        loop = next(f for f in findings if f.rule == "comb-loop")
        assert any("inv" in c for c in loop.cells)

    def test_short_carry_chain_tolerated(self, basys3_device):
        """A 4-stage carry chain (ordinary adder) must not trip the TDC
        rule."""
        from repro.fpga.netlist import Netlist
        from repro.fpga.primitives import CARRY4, FDRE

        nl = Netlist("adder")
        nl.add_port("cin", "in")
        nl.add_cell(CARRY4("c0"))
        nl.add_cell(FDRE("f0"))
        nl.connect("n0", ("cin", "O"), [("c0", "CYINIT")])
        nl.connect("n1", ("c0", "CO3"), [("f0", "D")])
        placement = Placer(basys3_device).place(nl)
        bs = generate_bitstream(nl, placement)
        assert BitstreamChecker().accepts(bs)


class TestDspRules:
    def test_leakydsp_rejected_with_dsp_rules(self, leakydsp_bitstream):
        findings = BitstreamChecker(dsp_rules=True).check(leakydsp_bitstream)
        assert any(f.rule == "dsp-async" for f in findings)

    def test_benign_pipelined_dsp_accepted(self, basys3_device):
        """A normally pipelined DSP cascade (a FIR tap) passes even the
        DSP-aware rules — the rule keys on full register bypass."""
        from repro.fpga.netlist import Netlist
        from repro.fpga.primitives import DSP48E1

        nl = Netlist("fir")
        nl.add_port("x", "in")
        a = DSP48E1("tap0", AREG=1, BREG=1, MREG=1, PREG=1, OPMODE=0b0000101)
        b = DSP48E1("tap1", AREG=1, BREG=1, MREG=1, PREG=1, OPMODE=0b0010101)
        nl.add_cell(a)
        nl.add_cell(b)
        nl.connect("n0", ("x", "O"), [("tap0", "A"), ("tap1", "A")])
        nl.connect("n1", ("tap0", "P"), [("tap1", "PCIN")])
        placement = Placer(basys3_device).place(nl)
        bs = generate_bitstream(nl, placement)
        assert BitstreamChecker(dsp_rules=True).accepts(bs)

    def test_isolated_comb_dsp_accepted(self, basys3_device):
        """One combinational DSP with no cascade is common benign usage
        and stays legal even under DSP rules."""
        from repro.fpga.netlist import Netlist
        from repro.fpga.primitives import DSP48E1, FDRE

        nl = Netlist("mult")
        nl.add_port("x", "in")
        dsp = DSP48E1("m", OPMODE=0b0000101, USE_MULT="MULTIPLY")
        nl.add_cell(dsp)
        nl.add_cell(FDRE("f"))
        nl.connect("n0", ("x", "O"), [("m", "A")])
        nl.connect("n1", ("m", "P"), [("f", "D")])
        placement = Placer(basys3_device).place(nl)
        bs = generate_bitstream(nl, placement)
        assert BitstreamChecker(dsp_rules=True).accepts(bs)

    def test_ruleset_off_by_default(self):
        assert BitstreamChecker().dsp_rules is False


class TestRoundTrippedBitstream:
    def test_checker_works_on_deserialized_bitstream(self, ro_bitstream):
        """The checker sees only the serialized artifact."""
        from repro.fpga.bitstream import Bitstream

        restored = Bitstream.from_json(ro_bitstream.to_json())
        assert not BitstreamChecker().accepts(restored)


class TestActiveFence:
    @pytest.fixture(scope="class")
    def coupling(self, basys3_device):
        return CouplingModel(basys3_device)

    def test_noise_positive(self, coupling):
        fence = ActiveFence(coupling, center=(10, 25), n_instances=1000)
        assert fence.noise_at((30, 25)) > 0

    def test_noise_scales_with_size(self, coupling):
        small = ActiveFence(coupling, center=(10, 25), n_instances=500)
        big = ActiveFence(coupling, center=(10, 25), n_instances=4000)
        pos = (30, 25)
        assert big.noise_at(pos) > small.noise_at(pos)

    def test_harden_increases_white_noise(self, coupling):
        fence = ActiveFence(coupling, center=(10, 25), n_instances=2000)
        base = NoiseModel(white_rms=1e-3, drift_rms=0.0)
        hardened = fence.harden(base, (30, 25))
        assert hardened.white_rms > base.white_rms
        # RMS addition, not linear.
        expected = np.hypot(base.white_rms, fence.noise_at((30, 25)))
        assert hardened.white_rms == pytest.approx(expected)

    def test_sites_on_ring(self, coupling):
        fence = ActiveFence(coupling, center=(20, 70), radius=5.0, n_instances=100)
        for site in fence.sites:
            r = np.hypot(site.x - 20, site.y - 70)
            assert r == pytest.approx(5.0, abs=0.1)

    def test_ring_clipped_to_die(self, coupling):
        fence = ActiveFence(coupling, center=(0, 0), radius=10.0, n_instances=64)
        for site in fence.sites:
            assert site.x >= 0 and site.y >= 0

    def test_validation(self, coupling):
        with pytest.raises(ConfigurationError):
            ActiveFence(coupling, center=(0, 0), radius=0.0)
        with pytest.raises(ConfigurationError):
            ActiveFence(coupling, center=(0, 0), duty_std=0.9)
