"""Property-based tests (hypothesis) for the campaign scheduler core.

The contract under test (see :mod:`repro.service.scheduler` and
:mod:`repro.service.quota`):

* quota accounting never goes negative and never exceeds the per-tenant
  limit, under arbitrary interleavings of submit / pick / cancel /
  finish — and drains to exactly zero once every job is terminal;
* admission order is tenant-fair: between two consecutive picks of one
  tenant, every other tenant whose queue stayed non-empty over that
  window is picked at least once (round-robin over tenants, whatever
  the per-tenant cache-aware ordering does within a queue);
* every submission coalesced into one run receives the bit-identical
  result payload (the same object, at the service level).

The scheduler is a pure synchronous object, so the interpreter drives
it directly; the coalescing payload property runs the full asyncio
service over a stub experiment.
"""

import asyncio
import concurrent.futures
import contextlib
import itertools

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuotaExceededError
from repro.service import (
    CacheAwareScheduler,
    CampaignService,
    Job,
    JobRequest,
    JobState,
    QuotaLedger,
    TenantQuota,
)

TENANTS = ("t0", "t1", "t2")
MAX_ACTIVE = 3


def make_job(counter, tenant, key_id):
    """A synthetic job: jobs sharing ``key_id`` share identity (they
    coalesce) and footprint (they warm each other's cache)."""
    return Job(
        id=f"job-{next(counter):04d}",
        request=JobRequest(tenant=tenant, experiment="stub", seed=key_id),
        key=f"key-{key_id}",
        footprint=f"fp-{key_id % 3}",
    )


#: One interpreter step: (op, tenant index, key index).
ops = st.lists(
    st.tuples(
        st.sampled_from(["submit", "pick", "finish", "cancel"]),
        st.integers(0, len(TENANTS) - 1),
        st.integers(0, 5),
    ),
    min_size=1,
    max_size=60,
)


class SchedulerInterpreter:
    """Drive a scheduler + ledger the way the service does, checking
    the ledger against an independent model after every operation."""

    def __init__(self):
        self.ledger = QuotaLedger(TenantQuota(max_active=MAX_ACTIVE))
        self.scheduler = CacheAwareScheduler(self.ledger)
        self.counter = itertools.count()
        self.model_active = {t: 0 for t in TENANTS}
        self.queued = []  # primary jobs not yet picked
        self.running = []  # picked primaries not yet finished
        self.jobs = []

    def release(self, job):
        if not job.quota_released:
            job.quota_released = True
            self.model_active[job.tenant] -= 1
            self.ledger.release(job.tenant)

    def on_cancelled(self, job):
        # The service's sweep callback: finalize + release.
        job.state = JobState.CANCELLED
        if job in self.queued:
            self.queued.remove(job)
        self.release(job)

    def submit(self, tenant, key_id):
        job = make_job(self.counter, tenant, key_id)
        try:
            primary = self.scheduler.submit(job)
        except QuotaExceededError:
            # Rejected exactly when the tenant is at its limit, and
            # rejection charges nothing.
            assert self.model_active[tenant] == MAX_ACTIVE
            return
        self.model_active[tenant] += 1
        self.jobs.append(job)
        if primary is None:
            self.queued.append(job)

    def pick(self):
        job = self.scheduler.next_job(on_cancelled=self.on_cancelled)
        if job is not None:
            assert not job.cancel_flag.is_set()
            assert job in self.queued
            self.queued.remove(job)
            job.state = JobState.RUNNING
            self.running.append(job)
        return job

    def finish(self, index):
        if not self.running:
            return
        job = self.running.pop(index % len(self.running))
        self.scheduler.finish(job)
        job.state = JobState.COMPLETED
        self.release(job)
        for follower in job.followers:
            follower.state = JobState.COMPLETED
            self.release(follower)

    def cancel(self, index):
        candidates = [
            j
            for j in self.jobs
            if j.state is JobState.QUEUED and not j.cancel_flag.is_set()
        ]
        if not candidates:
            return
        job = candidates[index % len(candidates)]
        job.cancel_flag.set()
        # Mirror CampaignService._cancel_on_loop.
        if job.coalesced_into is not None:
            self.scheduler.detach_follower(job)
            job.state = JobState.CANCELLED
            self.release(job)
            return
        heir = self.scheduler.cancel_queued(job)
        self.scheduler.drop_inflight(job)
        if job in self.queued:
            self.queued.remove(job)
        if heir is not None:
            self.queued.append(heir)
        job.state = JobState.CANCELLED
        self.release(job)

    def check_ledger(self):
        for tenant in TENANTS:
            held = self.ledger.active(tenant)
            assert held == self.model_active[tenant]
            assert 0 <= held <= MAX_ACTIVE

    def drain(self):
        while True:
            job = self.pick()
            if job is None:
                break
        while self.running:
            self.finish(0)


class TestQuotaAccounting:
    @given(ops)
    @settings(max_examples=200)
    def test_never_negative_and_drains_to_zero(self, steps):
        interp = SchedulerInterpreter()
        for op, tenant_idx, key_id in steps:
            if op == "submit":
                interp.submit(TENANTS[tenant_idx], key_id)
            elif op == "pick":
                interp.pick()
            elif op == "finish":
                interp.finish(key_id)
            else:
                interp.cancel(key_id)
            # The ledger (which raises loudly on any negative balance)
            # agrees with the independent model after every step.
            interp.check_ledger()
        interp.drain()
        interp.check_ledger()
        assert interp.ledger.as_dict() == {}
        assert interp.scheduler.pending_count() == 0
        # Every admitted job reached a terminal state exactly once.
        assert all(j.done for j in interp.jobs)
        assert all(j.quota_released for j in interp.jobs)


class TestFairness:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["submit", "pick"]),
                st.integers(0, len(TENANTS) - 1),
                st.integers(0, 5),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=200)
    def test_round_robin_between_tenants(self, steps):
        """Between two consecutive picks of tenant T, every tenant
        whose queue was non-empty at every pick from T's first pick
        through T's second is picked at least once.  (A tenant that
        only became pending *after* T's first pick may legitimately
        wait one ring rotation.)"""
        ledger = QuotaLedger(TenantQuota(max_active=100))
        scheduler = CacheAwareScheduler(ledger)
        counter = itertools.count()
        pending = {t: 0 for t in TENANTS}
        # (picked tenant, tenants with a pending job before the pick)
        pick_log = []

        def do_pick():
            before = frozenset(t for t, n in pending.items() if n > 0)
            job = scheduler.next_job()
            if job is None:
                assert not before
                return
            pending[job.tenant] -= 1
            pick_log.append((job.tenant, before))

        for op, tenant_idx, key_id in steps:
            if op == "submit":
                tenant = TENANTS[tenant_idx]
                job = make_job(counter, tenant, key_id)
                if scheduler.submit(job) is None:
                    pending[tenant] += 1
            else:
                do_pick()
        while any(pending.values()):
            do_pick()

        last_seen = {}
        for j, (tenant, _) in enumerate(pick_log):
            if tenant in last_seen:
                i = last_seen[tenant]
                window = pick_log[i : j + 1]
                picked_between = {t for t, _ in pick_log[i + 1 : j]}
                for other in TENANTS:
                    if other == tenant:
                        continue
                    if all(other in before for _, before in window):
                        assert other in picked_between, (
                            f"{other} starved between picks {i} and {j} "
                            f"of {tenant}: {pick_log}"
                        )
            last_seen[tenant] = j


class TestCacheAwareOrdering:
    def test_warm_footprint_preferred_within_tenant(self):
        """Deterministic core of cache-awareness: once a footprint has
        started, a queued job sharing it jumps the tenant's FIFO."""
        scheduler = CacheAwareScheduler(QuotaLedger(TenantQuota(max_active=10)))
        counter = itertools.count()
        first = make_job(counter, "t0", key_id=0)  # fp-0
        cold = make_job(counter, "t0", key_id=1)  # fp-1
        warm = make_job(counter, "t0", key_id=3)  # fp-0 again
        for job in (first, cold, warm):
            assert scheduler.submit(job) is None
        assert scheduler.next_job() is first  # FIFO; fp-0 now warm
        assert scheduler.next_job() is warm  # jumps ahead of cold
        assert scheduler.next_job() is cold
        assert scheduler.next_job() is None

    def test_fifo_when_nothing_is_warm(self):
        scheduler = CacheAwareScheduler(QuotaLedger(TenantQuota(max_active=10)))
        counter = itertools.count()
        jobs = [make_job(counter, "t0", key_id=k) for k in (0, 1, 2)]
        for job in jobs:
            scheduler.submit(job)
        assert [scheduler.next_job() for _ in range(3)] == jobs


class _InlineExecutor:
    def submit(self, fn, *args):
        future = concurrent.futures.Future()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # noqa: BLE001 - relayed via future
            future.set_exception(exc)
        return future

    def shutdown(self, wait=True):
        pass


@contextlib.contextmanager
def stub_experiment():
    """Temporarily register a fast deterministic experiment: its
    payload derives only from the seed, and it streams two keyrank
    checkpoints.  (A context manager, not a fixture, so hypothesis can
    re-enter it per generated example.)"""
    from repro.experiments import registry
    from repro.runtime import ProgressEvent

    def runner(config, engine):
        for i in (1, 2):
            if engine.progress is not None:
                engine.progress(
                    ProgressEvent(
                        kind="keyrank",
                        done=i,
                        total=2,
                        detail=f"stub {i}/2",
                        payload={
                            "n_traces": i,
                            "log2_lower": float(config.seed + i),
                            "log2_upper": float(config.seed + i) / 3.0,
                            "recovered": False,
                        },
                    )
                )
        return {"seed": config.seed}

    registry.get("fig5")  # force _populate() before patching the dict
    registry._REGISTRY["svc-stub"] = registry.ExperimentSpec(
        name="svc-stub",
        title="service stub",
        runner=runner,
        renderer=lambda payload: [repr(payload)],
        metrics=lambda payload: {"stub_seed": payload["seed"]},
    )
    try:
        yield
    finally:
        registry._REGISTRY.pop("svc-stub", None)


class TestCoalescedPayloadIdentity:
    @given(
        st.lists(
            st.tuples(st.sampled_from(TENANTS), st.integers(0, 3)),
            min_size=2,
            max_size=10,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_coalesced_jobs_get_bit_identical_payloads(self, submissions):
        """All submissions admitted before the first run starts and
        sharing a seed coalesce — and every member of a coalesced group
        receives the *same payload object* and checkpoint stream."""

        async def scenario():
            service = CampaignService(
                workers=1,
                quota=TenantQuota(max_active=100),
                executor=_InlineExecutor(),
            )
            await service.start()
            jobs = [
                await service.submit(tenant, "svc-stub", seed=seed)
                for tenant, seed in submissions
            ]
            for job in jobs:
                await service.join(job.id)
            await service.stop()
            return jobs

        with stub_experiment():
            jobs = asyncio.run(scenario())
        assert all(job.state is JobState.COMPLETED for job in jobs)
        by_key = {}
        for job in jobs:
            by_key.setdefault(job.key, []).append(job)
        for group in by_key.values():
            primary = group[0]
            assert primary.coalesced_into is None
            for follower in group[1:]:
                assert follower.coalesced_into == primary.id
                assert follower.result is primary.result
                assert follower.checkpoints == primary.checkpoints
            digests = {
                job.result["result_digest"] for job in group
            }
            assert len(digests) == 1
