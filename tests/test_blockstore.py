"""Tests for the content-addressed trace block cache.

The load-bearing property mirrors the engine's determinism contract:
cache state (off, cold, warm) can never change a result — only its
cost.  Corruption must surface as a typed warning plus re-acquisition,
never as a crash or silently wrong data.
"""

import os
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor
from functools import partial

import numpy as np
import pytest

from repro.attacks.cpa import CPAAttack
from repro.core.calibration import calibrate
from repro.core.leaky_dsp import LeakyDSP
from repro.errors import CacheError, CacheIntegrityWarning
from repro.fpga.placement import Pblock, Placer
from repro.kernels import default_kernel_name, set_default_kernel
from repro.pdn.coupling import CouplingModel
from repro.runtime import Engine
from repro.timing.sampling import ClockSpec
from repro.traces.acquisition import AESTraceAcquisition
from repro.traces.blockstore import (
    SCHEMA_VERSION,
    BlockStore,
    block_key,
    canonical_payload,
    open_store,
    seed_lineage,
)
from repro.traces.store import TraceSet
from repro.victims.aes import AESHardwareModel

KEY = bytes(range(16))
N_TRACES = 600
SHARD = 256  # -> 3 shards


@pytest.fixture(scope="module")
def acquisition(basys3_device):
    coupling = CouplingModel(basys3_device)
    placer = Placer(basys3_device)
    sensor = LeakyDSP(device=basys3_device, seed=7)
    sensor.place(
        placer, pblock=Pblock.from_region(basys3_device.region_by_name("X1Y0"))
    )
    calibrate(sensor, rng=0)
    hw = AESHardwareModel(ClockSpec(20e6), ClockSpec(300e6))
    return AESTraceAcquisition(sensor, coupling, hw, (10.0, 25.0))


def _first_block_path(store):
    paths = list(store._iter_block_paths())
    assert paths
    return paths[0]


# ----------------------------------------------------------------------
# Canonical keys
# ----------------------------------------------------------------------


class TestCanonicalKeys:
    def test_key_independent_of_mapping_order(self):
        a = {"b": 1, "a": [1, 2], "c": {"y": 2.5, "x": None}}
        b = {"c": {"x": None, "y": 2.5}, "a": (1, 2), "b": 1}
        assert block_key(a) == block_key(b)

    def test_numpy_values_canonicalize_like_python(self):
        a = {"n": np.int64(7), "x": np.float64(1.5), "v": np.arange(3)}
        b = {"n": 7, "x": 1.5, "v": [0, 1, 2]}
        assert block_key(a) == block_key(b)

    def test_bytes_hash_into_the_payload(self):
        assert block_key({"k": b"\x00" * 16}) != block_key({"k": b"\x01" * 16})

    def test_unserializable_payload_is_a_typed_error(self):
        with pytest.raises(CacheError):
            canonical_payload({"bad": object()})

    def test_seed_lineage_pins_the_stream(self):
        children = np.random.SeedSequence(3).spawn(2)
        again = np.random.SeedSequence(3).spawn(2)
        assert seed_lineage(children[0]) == seed_lineage(again[0])
        assert seed_lineage(children[0]) != seed_lineage(children[1])
        assert seed_lineage(children[0]) != seed_lineage(
            np.random.SeedSequence(4).spawn(1)[0]
        )

    def test_kernel_is_not_part_of_the_acquisition_token(self, acquisition):
        """Kernels are bit-identical by construction, so a block
        acquired by one must serve all."""
        default = default_kernel_name()
        try:
            set_default_kernel("reference")
            ref_token = acquisition.cache_token()
            set_default_kernel("fused")
            fused_token = acquisition.cache_token()
        finally:
            set_default_kernel(default)
        assert block_key(ref_token) == block_key(fused_token)


# ----------------------------------------------------------------------
# Store basics
# ----------------------------------------------------------------------


class TestBlockStoreBasics:
    def test_round_trip_preserves_dtypes_shapes_values(self, tmp_path):
        store = BlockStore(tmp_path)
        arrays = {
            "traces": np.arange(60, dtype=np.int16).reshape(4, 15),
            "cts": np.arange(64, dtype=np.uint8).reshape(4, 16),
            "sums": np.linspace(-1, 1, 7),
        }
        key = block_key({"test": 1})
        store.put(key, arrays, meta={"note": "x"})
        block = store.get(key)
        assert block is not None
        assert block.meta["note"] == "x"
        for name, expected in arrays.items():
            got = block.arrays[name]
            assert got.dtype == expected.dtype
            assert got.shape == expected.shape
            np.testing.assert_array_equal(got, expected)

    def test_reads_are_readonly_memmaps(self, tmp_path):
        store = BlockStore(tmp_path)
        key = block_key({"m": 1})
        store.put(key, {"x": np.ones(8, dtype=np.int16)})
        block = store.get(key)
        view = block.arrays["x"]
        assert isinstance(view.base, np.memmap) or isinstance(view, np.memmap)
        with pytest.raises((ValueError, RuntimeError)):
            view[0] = 2
        copies = block.materialize()
        copies["x"][0] = 2  # private copy is writable

    def test_miss_and_hit_counters(self, tmp_path):
        store = BlockStore(tmp_path)
        key = block_key({"c": 1})
        assert store.get(key) is None
        assert not store.contains(key)
        store.put(key, {"x": np.zeros(4)})
        assert store.contains(key)
        assert store.get(key) is not None
        assert store.counters.hits == 1
        assert store.counters.misses == 1
        assert store.counters.puts == 1
        assert store.counters.hit_rate == 0.5

    def test_stats_and_clear(self, tmp_path):
        store = BlockStore(tmp_path)
        for i in range(3):
            store.put(block_key({"i": i}), {"x": np.zeros(16)})
        stats = store.stats()
        assert stats.n_blocks == 3
        assert stats.total_bytes > 0
        assert "3 blocks" in stats.summary()
        assert store.clear() == 3
        assert store.stats().n_blocks == 0

    def test_empty_put_rejected(self, tmp_path):
        with pytest.raises(CacheError):
            BlockStore(tmp_path).put(block_key({}), {})

    def test_open_store_normalizes(self, tmp_path):
        assert open_store(None) is None
        store = open_store(str(tmp_path))
        assert isinstance(store, BlockStore)
        assert open_store(store) is store

    def test_store_pickles_as_configuration(self, tmp_path):
        import pickle

        store = BlockStore(tmp_path, max_bytes=1 << 20)
        store.counters.hits = 5
        clone = pickle.loads(pickle.dumps(store))
        assert clone.root == store.root
        assert clone.max_bytes == store.max_bytes
        assert clone.counters.hits == 0  # counters are process-local


# ----------------------------------------------------------------------
# Integrity: damage never crashes and never yields wrong data
# ----------------------------------------------------------------------


class TestIntegrity:
    def _put_one(self, tmp_path):
        store = BlockStore(tmp_path)
        key = block_key({"d": 1})
        store.put(key, {"x": np.arange(256, dtype=np.int16)})
        return store, key

    def test_truncated_block_is_a_warned_miss(self, tmp_path):
        store, key = self._put_one(tmp_path)
        path = store.path_for(key)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.warns(CacheIntegrityWarning):
            assert store.get(key) is None
        assert not path.exists()  # quarantined
        assert store.counters.integrity_failures == 1

    def test_corrupted_payload_byte_is_a_warned_miss(self, tmp_path):
        store, key = self._put_one(tmp_path)
        path = store.path_for(key)
        data = bytearray(path.read_bytes())
        data[-7] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.warns(CacheIntegrityWarning):
            assert store.get(key) is None

    def test_corrupted_header_is_a_warned_miss(self, tmp_path):
        store, key = self._put_one(tmp_path)
        path = store.path_for(key)
        data = bytearray(path.read_bytes())
        data[10] ^= 0xFF  # inside the JSON header
        path.write_bytes(bytes(data))
        with pytest.warns(CacheIntegrityWarning):
            assert store.get(key) is None

    def test_verify_reports_and_optionally_deletes(self, tmp_path):
        store = BlockStore(tmp_path)
        good = block_key({"good": 1})
        bad = block_key({"bad": 1})
        store.put(good, {"x": np.zeros(8)})
        store.put(bad, {"x": np.zeros(8)})
        path = store.path_for(bad)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0x01
        path.write_bytes(bytes(data))

        report = store.verify()
        assert not report.ok
        assert report.n_ok == 1
        assert len(report.bad) == 1
        assert path.exists()

        report = store.verify(delete_bad=True)
        assert not path.exists()
        assert store.verify().ok


# ----------------------------------------------------------------------
# Eviction
# ----------------------------------------------------------------------


class TestEviction:
    def test_size_cap_evicts_lru_first(self, tmp_path):
        store = BlockStore(tmp_path)
        keys = [block_key({"e": i}) for i in range(4)]
        for i, key in enumerate(keys):
            path = store.put(key, {"x": np.zeros(1024, dtype=np.int16)})
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
        block_size = store.path_for(keys[0]).stat().st_size
        evicted = store.prune(max_bytes=2 * block_size)
        assert evicted == 2
        assert not store.contains(keys[0]) and not store.contains(keys[1])
        assert store.contains(keys[2]) and store.contains(keys[3])
        assert store.counters.evictions == 2

    def test_reads_refresh_lru_position(self, tmp_path):
        store = BlockStore(tmp_path)
        keys = [block_key({"r": i}) for i in range(3)]
        for i, key in enumerate(keys):
            path = store.put(key, {"x": np.zeros(1024, dtype=np.int16)})
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
        store.get(keys[0])  # touch: now most recently used
        block_size = store.path_for(keys[0]).stat().st_size
        store.prune(max_bytes=2 * block_size)
        assert store.contains(keys[0])
        assert not store.contains(keys[1])

    def test_put_honors_max_bytes(self, tmp_path):
        store = BlockStore(tmp_path, max_bytes=3000)
        for i in range(5):
            store.put(block_key({"c": i}), {"x": np.zeros(512, dtype=np.int16)})
        assert store.stats().total_bytes <= 3000
        assert store.counters.evictions > 0

    def test_prune_rejects_negative(self, tmp_path):
        with pytest.raises(CacheError):
            BlockStore(tmp_path).prune(-1)

    def test_get_survives_block_pruned_after_contains(self, tmp_path):
        """Regression: a block evicted between ``contains()`` and the
        read must come back as a counted miss, never an exception —
        that is the exact window a concurrent engine's ``prune`` (or a
        fleet peer's eviction) can hit."""
        store = BlockStore(tmp_path)
        key = block_key({"race": 1})
        store.put(key, {"x": np.zeros(64, dtype=np.int16)})
        assert store.contains(key)
        # Another process prunes the store in the gap.
        BlockStore(tmp_path).prune(max_bytes=0)
        assert store.get(key, expect=True) is None
        assert store.counters.misses == 1
        assert store.counters.expired == 1
        # Unexpected lookups of never-present keys stay plain misses.
        assert store.get(block_key({"race": 2})) is None
        assert store.counters.expired == 1
        assert store.counters.misses == 2

    def test_racing_prune_during_campaign_reacquires(
        self, acquisition, tmp_path
    ):
        """A prune racing a warm campaign degrades hits to misses,
        bit-identically."""
        engine = Engine(workers=1, shard_size=SHARD, cache=str(tmp_path))
        cold = engine.collect(acquisition, N_TRACES, key=KEY, seed=3)

        pruning = threading.Event()

        class _PruningStore(BlockStore):
            def get(self, key, touch=True, expect=False):  # noqa: D102
                if not pruning.is_set():
                    pruning.set()
                    super().prune(max_bytes=0)  # everything evicted
                return super().get(key, touch=touch, expect=expect)

        racy = Engine(
            workers=1, shard_size=SHARD, cache=_PruningStore(tmp_path)
        )
        warm = racy.collect(acquisition, N_TRACES, key=KEY, seed=3)
        np.testing.assert_array_equal(cold.traces, warm.traces)
        assert racy.cache_totals["misses"] == 3


# ----------------------------------------------------------------------
# Engine integration: off == cold == warm, bit for bit
# ----------------------------------------------------------------------


class TestEngineCache:
    def test_collect_identical_off_cold_warm(self, acquisition, tmp_path):
        off = Engine(workers=1, shard_size=SHARD).collect(
            acquisition, N_TRACES, key=KEY, seed=3
        )
        cold_engine = Engine(workers=1, shard_size=SHARD, cache=str(tmp_path))
        cold = cold_engine.collect(acquisition, N_TRACES, key=KEY, seed=3)
        assert cold_engine.last_metrics.cache_misses == 3
        assert cold_engine.last_metrics.cache_hits == 0

        warm_engine = Engine(workers=1, shard_size=SHARD, cache=str(tmp_path))
        warm = warm_engine.collect(acquisition, N_TRACES, key=KEY, seed=3)
        assert warm_engine.last_metrics.cache_hits == 3
        assert warm_engine.last_metrics.cache_misses == 0
        assert warm_engine.cache_hit_rate() == 1.0

        for a, b in ((off, cold), (cold, warm)):
            np.testing.assert_array_equal(a.traces, b.traces)
            np.testing.assert_array_equal(a.plaintexts, b.plaintexts)
            np.testing.assert_array_equal(a.ciphertexts, b.ciphertexts)

    def test_warm_hits_across_worker_counts(self, acquisition, tmp_path):
        serial = Engine(workers=1, shard_size=SHARD, cache=str(tmp_path))
        cold = serial.collect(acquisition, N_TRACES, key=KEY, seed=3)
        pooled = Engine(workers=2, shard_size=SHARD, cache=str(tmp_path))
        warm = pooled.collect(acquisition, N_TRACES, key=KEY, seed=3)
        assert pooled.last_metrics.cache_hits == 3
        np.testing.assert_array_equal(cold.traces, warm.traces)

    def test_seed_and_config_invalidate_blocks(self, acquisition, tmp_path):
        engine = Engine(workers=1, shard_size=SHARD, cache=str(tmp_path))
        engine.collect(acquisition, N_TRACES, key=KEY, seed=3)
        engine.collect(acquisition, N_TRACES, key=KEY, seed=4)
        assert engine.cache_totals["misses"] == 6  # disjoint keys
        engine.collect(acquisition, N_TRACES, key=bytes(16), seed=3)
        assert engine.cache_totals["misses"] == 9

    def test_blocks_shared_between_kernels(self, acquisition, tmp_path):
        default = default_kernel_name()
        try:
            set_default_kernel("reference")
            cold_engine = Engine(workers=1, shard_size=SHARD, cache=str(tmp_path))
            cold = cold_engine.collect(acquisition, N_TRACES, key=KEY, seed=3)
            set_default_kernel("fused")
            warm_engine = Engine(workers=1, shard_size=SHARD, cache=str(tmp_path))
            warm = warm_engine.collect(acquisition, N_TRACES, key=KEY, seed=3)
        finally:
            set_default_kernel(default)
        assert warm_engine.last_metrics.cache_hits == 3
        np.testing.assert_array_equal(cold.traces, warm.traces)

    def test_damaged_block_reacquired_with_warning(self, acquisition, tmp_path):
        engine = Engine(workers=1, shard_size=SHARD, cache=str(tmp_path))
        cold = engine.collect(acquisition, N_TRACES, key=KEY, seed=3)
        path = _first_block_path(engine.cache)
        data = bytearray(path.read_bytes())
        data[-3] ^= 0xFF
        path.write_bytes(bytes(data))

        with pytest.warns(CacheIntegrityWarning):
            warm = engine.collect(acquisition, N_TRACES, key=KEY, seed=3)
        np.testing.assert_array_equal(cold.traces, warm.traces)
        assert engine.last_metrics.cache_hits == 2
        assert engine.last_metrics.cache_misses == 1
        # The damaged block was re-published; a third run is all hits.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = engine.collect(acquisition, N_TRACES, key=KEY, seed=3)
        assert engine.last_metrics.cache_hits == 3
        np.testing.assert_array_equal(cold.traces, again.traces)

    def test_stream_identical_off_cold_warm_any_chunking(
        self, acquisition, tmp_path
    ):
        n_samples = acquisition.default_n_samples()
        factory = partial(CPAAttack, n_samples)

        def correlations(engine, chunk_size=None):
            attack = engine.stream_attack(
                acquisition, N_TRACES, key=KEY,
                consumer_factory=factory, seed=3, chunk_size=chunk_size,
            )
            return attack.correlations()

        off = correlations(Engine(workers=1, shard_size=SHARD))
        cold = correlations(
            Engine(workers=1, shard_size=SHARD, cache=str(tmp_path))
        )
        warm_chunked = correlations(
            Engine(workers=1, shard_size=SHARD, cache=str(tmp_path)),
            chunk_size=100,
        )
        warm_pool = correlations(
            Engine(workers=2, shard_size=SHARD, cache=str(tmp_path)),
            chunk_size=37,
        )
        np.testing.assert_array_equal(off, cold)
        np.testing.assert_array_equal(off, warm_chunked)
        np.testing.assert_array_equal(off, warm_pool)

    def test_collect_warms_stream_and_vice_versa(self, acquisition, tmp_path):
        """Streamed and collected campaigns share block keys."""
        engine = Engine(workers=1, shard_size=SHARD, cache=str(tmp_path))
        engine.collect(acquisition, N_TRACES, key=KEY, seed=3)
        n_samples = acquisition.default_n_samples()
        engine.stream_attack(
            acquisition, N_TRACES, key=KEY,
            consumer_factory=partial(CPAAttack, n_samples), seed=3,
        )
        assert engine.last_metrics.cache_hits == 3
        assert engine.last_metrics.cache_misses == 0

    def test_characterize_identical_cold_warm(self, tmp_path):
        from repro.experiments import common

        setup = common.Basys3Setup.create()
        virus = common.make_virus(setup, n_instances=200, n_groups=4)
        sensor = common.make_leakydsp(
            setup, common.region_pblock(setup.device, 2), seed=9
        )
        off = Engine(workers=1, shard_size=SHARD).characterize(
            sensor, setup.coupling, virus, 2, n_readouts=500, seed=5
        )
        engine = Engine(workers=1, shard_size=SHARD, cache=str(tmp_path))
        cold = engine.characterize(
            sensor, setup.coupling, virus, 2, n_readouts=500, seed=5
        )
        warm = engine.characterize(
            sensor, setup.coupling, virus, 2, n_readouts=500, seed=5
        )
        assert engine.last_metrics.cache_hits == 2
        np.testing.assert_array_equal(off, cold)
        np.testing.assert_array_equal(cold, warm)

    def test_shard_metrics_carry_cache_fields(self, acquisition, tmp_path):
        engine = Engine(workers=1, shard_size=SHARD, cache=str(tmp_path))
        engine.collect(acquisition, N_TRACES, key=KEY, seed=3)
        shard = engine.last_metrics.shards[0]
        assert shard.cache == "miss"
        assert shard.cache_nbytes > 0
        assert "cache miss" in shard.summary()
        summary = engine.last_metrics.summary()
        assert "cache 0/3 hits" in summary
        cache_summary = engine.last_metrics.cache_summary()
        assert cache_summary["enabled"] is True
        assert cache_summary["misses"] == 3


# ----------------------------------------------------------------------
# Attack-state snapshots: warm streams replay without re-accumulating
# ----------------------------------------------------------------------


class TestAttackStateSnapshots:
    def _run(self, acquisition, cache_dir, workers=1):
        n_samples = acquisition.default_n_samples()
        engine = Engine(workers=workers, shard_size=SHARD, cache=cache_dir)
        seen = []

        def on_checkpoint(end, attack):
            seen.append((end, attack.correlations().copy()))

        attack = engine.stream_attack(
            acquisition, N_TRACES, key=KEY,
            consumer_factory=partial(CPAAttack, n_samples),
            seed=3, checkpoints=(200, 400, 600),
            on_checkpoint=on_checkpoint,
        )
        return engine, attack, seen

    def test_warm_stream_replays_bit_identically(self, acquisition, tmp_path):
        cold_engine, cold_attack, cold_points = self._run(
            acquisition, str(tmp_path)
        )
        assert cold_engine.last_metrics.cache_misses == 3

        warm_engine, warm_attack, warm_points = self._run(
            acquisition, str(tmp_path)
        )
        # Replay is served from state snapshots: all hits, no misses.
        assert warm_engine.last_metrics.cache_hits > 0
        assert warm_engine.last_metrics.cache_misses == 0
        assert warm_engine.cache_hit_rate() == 1.0
        assert warm_attack.n_traces == cold_attack.n_traces
        np.testing.assert_array_equal(
            cold_attack.correlations(), warm_attack.correlations()
        )
        assert [e for e, _ in cold_points] == [e for e, _ in warm_points]
        for (_, a), (_, b) in zip(cold_points, warm_points):
            np.testing.assert_array_equal(a, b)

    def test_damaged_snapshot_falls_back_to_blocks(self, acquisition, tmp_path):
        cold_engine, cold_attack, _ = self._run(acquisition, str(tmp_path))
        # Damage every attack-state snapshot; trace blocks stay intact.
        store = cold_engine.cache
        damaged = 0
        for path in list(store._iter_block_paths()):
            key = path.name.split(".")[0]
            block = store._read(key, path)
            if block.meta.get("kind") == "attack-state":
                data = bytearray(path.read_bytes())
                data[-5] ^= 0xFF
                path.write_bytes(bytes(data))
                damaged += 1
        assert damaged > 0

        with pytest.warns(CacheIntegrityWarning):
            warm_engine, warm_attack, _ = self._run(acquisition, str(tmp_path))
        # Fell back to streaming the (intact) trace blocks.
        assert warm_engine.last_metrics.cache_hits == 3
        assert warm_engine.last_metrics.cache_misses == 0
        np.testing.assert_array_equal(
            cold_attack.correlations(), warm_attack.correlations()
        )

    def test_continuation_is_not_snapshotted(self, acquisition, tmp_path):
        n_samples = acquisition.default_n_samples()
        engine = Engine(workers=1, shard_size=SHARD, cache=str(tmp_path))
        attack = engine.stream_attack(
            acquisition, N_TRACES, key=KEY,
            consumer_factory=partial(CPAAttack, n_samples), seed=3,
        )
        n_before = engine.cache.stats().n_blocks
        engine.stream_attack(
            acquisition, N_TRACES, key=KEY,
            consumer_factory=partial(CPAAttack, n_samples), seed=11,
            consumer=attack,
        )
        store = engine.cache
        new_states = [
            p
            for p in store._iter_block_paths()
            if store._read(p.name.split(".")[0], p).meta.get("kind")
            == "attack-state"
            and store._read(p.name.split(".")[0], p).meta.get("n_traces")
            == N_TRACES
        ]
        # The first (fresh) run snapshotted its end state; the
        # continuation must not publish states of its own.
        assert engine.cache.stats().n_blocks == n_before + 3  # new trace blocks
        assert len(new_states) == 1

    def test_state_round_trip_is_exact(self):
        rng = np.random.default_rng(0)
        attack = CPAAttack(12, sample_window=(2, 9))
        traces = rng.integers(0, 48, size=(50, 12)).astype(np.int16)
        cts = rng.integers(0, 256, size=(50, 16), dtype=np.uint8)
        attack.add_traces(traces, cts)
        clone = CPAAttack(12, sample_window=(2, 9))
        clone.load_state_arrays(attack.state_arrays())
        assert clone.n_traces == attack.n_traces
        np.testing.assert_array_equal(
            attack.correlations(), clone.correlations()
        )
        assert attack.cache_token() == clone.cache_token()
        assert attack.cache_token() != CPAAttack(12).cache_token()


# ----------------------------------------------------------------------
# Concurrent writers
# ----------------------------------------------------------------------


def _collect_traces(acquisition, cache_dir, seed):
    engine = Engine(workers=1, shard_size=SHARD, cache=cache_dir)
    ts = engine.collect(acquisition, N_TRACES, key=KEY, seed=seed)
    return ts.traces


class TestConcurrentWriters:
    def test_two_engines_share_a_store_without_torn_blocks(
        self, acquisition, tmp_path
    ):
        acquisition.sensor.precompute_moments()
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(_collect_traces, acquisition, str(tmp_path), 3)
                for _ in range(2)
            ]
            results = [f.result() for f in futures]
        np.testing.assert_array_equal(results[0], results[1])

        store = BlockStore(tmp_path)
        report = store.verify()
        assert report.ok, report.bad
        assert store.stats().n_blocks == 3
        leftovers = [
            p
            for sub in tmp_path.iterdir() if sub.is_dir()
            for p in sub.iterdir() if p.name.startswith(".tmp-")
        ]
        assert leftovers == []

        warm = Engine(workers=1, shard_size=SHARD, cache=str(tmp_path))
        again = warm.collect(acquisition, N_TRACES, key=KEY, seed=3)
        assert warm.last_metrics.cache_hits == 3
        np.testing.assert_array_equal(results[0], again.traces)


# ----------------------------------------------------------------------
# TraceSet compression option
# ----------------------------------------------------------------------


class TestTraceSetCompress:
    def _make(self):
        rng = np.random.default_rng(0)
        return TraceSet(
            traces=rng.integers(0, 48, size=(100, 20)).astype(np.int16),
            plaintexts=rng.integers(0, 256, size=(100, 16), dtype=np.uint8),
            ciphertexts=rng.integers(0, 256, size=(100, 16), dtype=np.uint8),
            key=np.frombuffer(KEY, dtype=np.uint8),
            metadata={"sensor": "LeakyDSP"},
        )

    def test_uncompressed_round_trip(self, tmp_path):
        ts = self._make()
        path = tmp_path / "fast.npz"
        ts.save(path, compress=False)
        loaded = TraceSet.load(path)
        np.testing.assert_array_equal(ts.traces, loaded.traces)
        np.testing.assert_array_equal(ts.ciphertexts, loaded.ciphertexts)
        assert loaded.metadata == ts.metadata

    def test_default_stays_compressed(self, tmp_path):
        ts = self._make()
        small = tmp_path / "small.npz"
        big = tmp_path / "big.npz"
        ts.save(small)
        ts.save(big, compress=False)
        assert small.stat().st_size < big.stat().st_size
        np.testing.assert_array_equal(
            TraceSet.load(small).traces, TraceSet.load(big).traces
        )


# ----------------------------------------------------------------------
# CLI and registry wiring
# ----------------------------------------------------------------------


class TestCacheCLI:
    def test_stats_verify_clear(self, tmp_path, capsys):
        from repro.cli import main

        store = BlockStore(tmp_path)
        store.put(block_key({"cli": 1}), {"x": np.zeros(16, dtype=np.int16)})

        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "1 blocks" in capsys.readouterr().out

        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0
        assert "1 blocks ok, 0 bad" in capsys.readouterr().out

        path = _first_block_path(store)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0x01
        path.write_bytes(bytes(data))
        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 1
        assert "1 bad" in capsys.readouterr().out
        assert (
            main(
                ["cache", "verify", "--delete-bad", "--cache-dir", str(tmp_path)]
            )
            == 1
        )
        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0

        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert store.stats().n_blocks == 0

    def test_cache_without_directory_fails(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "stats"]) == 2
        assert "REPRO_CACHE_DIR" in capsys.readouterr().err

    def test_cache_dir_from_environment(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache", "stats"]) == 0
        assert "0 blocks" in capsys.readouterr().out


class TestRegistryCacheConfig:
    def test_env_fallback(self, tmp_path, monkeypatch):
        from repro.experiments import registry

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = registry.ExperimentConfig(scale="quick")
        assert config.cache_dir == str(tmp_path)
        engine = config.make_engine()
        assert engine.cache is not None
        assert engine.cache.root == tmp_path

    def test_default_is_off(self, monkeypatch):
        from repro.experiments import registry

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        config = registry.ExperimentConfig(scale="quick")
        assert config.cache_dir is None
        assert config.make_engine().cache is None

    def test_run_reports_cache_metadata(self, tmp_path, monkeypatch):
        from repro.experiments import registry

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        config = registry.ExperimentConfig(
            scale="quick", cache_dir=str(tmp_path)
        )
        result = registry.run("fig3", config)
        cache = result.metadata.get("cache")
        assert cache is not None
        assert cache["hits"] + cache["misses"] >= 0
        assert 0.0 <= cache["hit_rate"] <= 1.0
