"""Tests for trace storage and the acquisition harnesses."""

import numpy as np
import pytest

from repro.core.leaky_dsp import LeakyDSP
from repro.core.calibration import calibrate
from repro.errors import AcquisitionError
from repro.fpga.placement import Pblock, Placer
from repro.pdn.coupling import CouplingModel
from repro.pdn.noise import NoiseModel
from repro.timing.sampling import ClockSpec
from repro.traces.acquisition import AESTraceAcquisition, characterize_readouts
from repro.traces.store import TraceSet
from repro.victims.aes import AES128, AESHardwareModel
from repro.victims.power_virus import PowerVirusBank

KEY = bytes(range(16))


def _dummy_set(n=10, samples=5, key=KEY):
    rng = np.random.default_rng(0)
    return TraceSet(
        traces=rng.integers(0, 48, (n, samples)).astype(np.int16),
        plaintexts=rng.integers(0, 256, (n, 16), dtype=np.uint8),
        ciphertexts=rng.integers(0, 256, (n, 16), dtype=np.uint8),
        key=np.frombuffer(key, dtype=np.uint8),
    )


class TestTraceSet:
    def test_len_and_samples(self):
        ts = _dummy_set(7, 9)
        assert len(ts) == 7
        assert ts.n_samples == 9

    def test_shape_mismatch_rejected(self):
        with pytest.raises(AcquisitionError):
            TraceSet(
                traces=np.zeros((5, 4)),
                plaintexts=np.zeros((4, 16), dtype=np.uint8),
                ciphertexts=np.zeros((5, 16), dtype=np.uint8),
                key=np.zeros(16, dtype=np.uint8),
            )

    def test_bad_key_rejected(self):
        with pytest.raises(AcquisitionError):
            TraceSet(
                traces=np.zeros((2, 4)),
                plaintexts=np.zeros((2, 16), dtype=np.uint8),
                ciphertexts=np.zeros((2, 16), dtype=np.uint8),
                key=np.zeros(15, dtype=np.uint8),
            )

    def test_head(self):
        ts = _dummy_set(10)
        head = ts.head(4)
        assert len(head) == 4
        np.testing.assert_array_equal(head.traces, ts.traces[:4])

    def test_head_bounds(self):
        with pytest.raises(AcquisitionError):
            _dummy_set(5).head(6)
        with pytest.raises(AcquisitionError):
            _dummy_set(5).head(0)

    def test_extend(self):
        a, b = _dummy_set(4), _dummy_set(6)
        merged = a.extend(b)
        assert len(merged) == 10
        np.testing.assert_array_equal(merged.traces[4:], b.traces)

    def test_extend_key_mismatch_rejected(self):
        a = _dummy_set(4)
        b = _dummy_set(4, key=bytes(range(1, 17)))
        with pytest.raises(AcquisitionError):
            a.extend(b)

    def test_extend_length_mismatch_rejected(self):
        with pytest.raises(AcquisitionError):
            _dummy_set(4, samples=5).extend(_dummy_set(4, samples=6))

    def test_save_load_roundtrip(self, tmp_path):
        ts = _dummy_set(8)
        ts.metadata["placement"] = "P6"
        path = tmp_path / "traces.npz"
        ts.save(path)
        restored = TraceSet.load(path)
        np.testing.assert_array_equal(restored.traces, ts.traces)
        np.testing.assert_array_equal(restored.key, ts.key)
        assert restored.metadata["placement"] == "P6"


@pytest.fixture(scope="module")
def acquisition(basys3_device):
    coupling = CouplingModel(basys3_device)
    placer = Placer(basys3_device)
    sensor = LeakyDSP(device=basys3_device, seed=7)
    sensor.place(
        placer, pblock=Pblock.from_region(basys3_device.region_by_name("X1Y0"))
    )
    calibrate(sensor, rng=0)
    hw = AESHardwareModel(ClockSpec(20e6), ClockSpec(300e6))
    return AESTraceAcquisition(sensor, coupling, hw, (10.0, 25.0))


class TestAESAcquisition:
    def test_collect_shapes(self, acquisition):
        ts = acquisition.collect(50, key=KEY, rng=1)
        assert ts.traces.shape == (50, acquisition.hw_model.samples_per_block + 30)
        assert ts.plaintexts.shape == (50, 16)

    def test_ciphertexts_are_correct(self, acquisition):
        ts = acquisition.collect(20, key=KEY, rng=2)
        aes = AES128(KEY)
        np.testing.assert_array_equal(aes.encrypt_blocks(ts.plaintexts), ts.ciphertexts)

    def test_metadata_populated(self, acquisition):
        ts = acquisition.collect(5, key=KEY, rng=3)
        assert ts.metadata["aes_frequency_hz"] == 20e6
        assert ts.metadata["sensor_type"] == "LeakyDSP"

    def test_reproducible_for_same_chunking(self, acquisition):
        a = acquisition.collect(30, key=KEY, rng=4, chunk_size=7)
        b = acquisition.collect(30, key=KEY, rng=4, chunk_size=7)
        np.testing.assert_array_equal(a.plaintexts, b.plaintexts)
        np.testing.assert_array_equal(a.traces, b.traces)

    def test_chunk_size_preserves_validity(self, acquisition):
        """Different chunk sizes draw differently from the stream, but
        every chunking yields internally consistent campaigns."""
        aes = AES128(KEY)
        for chunk in (7, 30):
            ts = acquisition.collect(30, key=KEY, rng=4, chunk_size=chunk)
            np.testing.assert_array_equal(
                aes.encrypt_blocks(ts.plaintexts), ts.ciphertexts
            )

    def test_nonpositive_count_rejected(self, acquisition):
        with pytest.raises(AcquisitionError):
            acquisition.collect(0, key=KEY)

    def test_key_is_keyword_only(self, acquisition):
        with pytest.raises(TypeError):
            acquisition.collect(10, KEY)

    def test_traces_sit_in_sensor_range(self, acquisition):
        ts = acquisition.collect(50, key=KEY, rng=5)
        assert ts.traces.min() >= 0
        assert ts.traces.max() <= 48

    def test_encryption_visible_in_traces(self, acquisition):
        """Mean readout during the rounds is lower than during the
        lead-in (the core draws current while encrypting)."""
        ts = acquisition.collect(300, key=KEY, rng=6)
        spc = acquisition.hw_model.samples_per_cycle
        lead = ts.traces[:, : spc // 2].mean()
        busy = ts.traces[:, 5 * spc : 10 * spc].mean()
        assert busy < lead


class TestCharacterize:
    @pytest.fixture(scope="class")
    def bench(self, basys3_device):
        coupling = CouplingModel(basys3_device)
        placer = Placer(basys3_device)
        virus = PowerVirusBank(basys3_device, 800, 8)
        virus.place(placer, [Pblock("v", 0, 0, 41, 59)])
        sensor = LeakyDSP(device=basys3_device, seed=7)
        sensor.place(
            placer,
            pblock=Pblock.from_region(basys3_device.region_by_name("X1Y0")),
        )
        calibrate(sensor, rng=0)
        return sensor, coupling, virus

    def test_shape(self, bench):
        sensor, coupling, virus = bench
        r = characterize_readouts(sensor, coupling, virus, 4, 100, rng=0)
        assert r.shape == (100,)

    def test_activity_lowers_readout(self, bench):
        sensor, coupling, virus = bench
        idle = characterize_readouts(sensor, coupling, virus, 0, 500, rng=1)
        busy = characterize_readouts(sensor, coupling, virus, 8, 500, rng=2)
        assert busy.mean() < idle.mean()

    def test_bad_group_count_rejected(self, bench):
        sensor, coupling, virus = bench
        with pytest.raises(AcquisitionError):
            characterize_readouts(sensor, coupling, virus, 9, 10)

    def test_quiet_noise_deterministic_mean(self, bench):
        sensor, coupling, virus = bench
        r = characterize_readouts(
            sensor, coupling, virus, 2, 400, noise=NoiseModel.quiet(), rng=3
        )
        expected = sensor.expected_readout(
            np.array([sensor.constants.v_nominal
                      - virus.droop_at(coupling, sensor.position,
                                       np.array([1, 1, 0, 0, 0, 0, 0, 0]))])
        )[0]
        assert r.mean() == pytest.approx(expected, abs=0.5)
