"""Tests for the RC-mesh PDN reference solver."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.pdn.mesh import PDNMesh


@pytest.fixture(scope="module")
def mesh():
    return PDNMesh(nx=15, ny=15, v_nominal=1.0)


class TestStaticSolve:
    def test_no_load_sits_at_nominal(self, mesh):
        v = mesh.solve_static({})
        np.testing.assert_allclose(v, 1.0, atol=1e-9)

    def test_load_causes_droop(self, mesh):
        v = mesh.solve_static({(7, 7): 1e-3})
        assert v[7, 7] < 1.0
        assert np.all(v < 1.0 + 1e-12)

    def test_droop_peaks_at_load(self, mesh):
        v = mesh.solve_static({(7, 7): 1e-3})
        droop = 1.0 - v
        assert droop.argmax() == 7 * mesh.nx + 7

    def test_droop_decays_with_distance(self, mesh):
        v = mesh.solve_static({(7, 7): 1e-3})
        droop = 1.0 - v
        assert droop[7, 7] > droop[7, 12] > droop[7, 14] > 0

    def test_superposition(self, mesh):
        va = 1.0 - mesh.solve_static({(3, 3): 1e-3})
        vb = 1.0 - mesh.solve_static({(11, 11): 2e-3})
        vab = 1.0 - mesh.solve_static({(3, 3): 1e-3, (11, 11): 2e-3})
        np.testing.assert_allclose(vab, va + vb, rtol=1e-9, atol=1e-12)

    def test_droop_linear_in_current(self, mesh):
        d1 = 1.0 - mesh.solve_static({(7, 7): 1e-3})
        d2 = 1.0 - mesh.solve_static({(7, 7): 2e-3})
        np.testing.assert_allclose(d2, 2 * d1, rtol=1e-9)

    def test_negative_load_rejected(self, mesh):
        with pytest.raises(ConfigurationError):
            mesh.solve_static({(7, 7): -1e-3})

    def test_weak_supply_region_droops_more(self):
        strength = np.ones((9, 9))
        strength[:, :4] = 0.5  # weak left half
        weak = PDNMesh(9, 9, supply_strength=strength)
        uniform = PDNMesh(9, 9)
        d_weak = 1.0 - weak.solve_static({(2, 4): 1e-3})
        d_uni = 1.0 - uniform.solve_static({(2, 4): 1e-3})
        assert d_weak[4, 2] > d_uni[4, 2]


class TestTransient:
    def test_converges_to_static_solution(self, mesh):
        static = mesh.solve_static({(7, 7): 1e-3})
        steps = 400
        currents = np.full((1, steps), 1e-3)
        v = mesh.transient([(7, 7)], currents, dt=5e-9)
        np.testing.assert_allclose(v[-1], static, rtol=1e-4)

    def test_monotone_approach(self, mesh):
        currents = np.full((1, 100), 1e-3)
        v = mesh.transient([(7, 7)], currents, dt=5e-9)
        node = v[:, 7, 7]
        assert np.all(np.diff(node) <= 1e-12)  # settles downward

    def test_release_recovers(self, mesh):
        currents = np.concatenate([np.full(100, 1e-3), np.zeros(200)])[None, :]
        v = mesh.transient([(7, 7)], currents, dt=5e-9)
        assert v[-1, 7, 7] == pytest.approx(1.0, abs=1e-4)

    def test_shape(self, mesh):
        v = mesh.transient([(1, 1), (2, 2)], np.zeros((2, 10)), dt=1e-9)
        assert v.shape == (10, mesh.ny, mesh.nx)

    def test_row_mismatch_rejected(self, mesh):
        with pytest.raises(ConfigurationError):
            mesh.transient([(1, 1)], np.zeros((2, 10)), dt=1e-9)


class TestValidation:
    def test_tiny_mesh_rejected(self):
        with pytest.raises(ConfigurationError):
            PDNMesh(1, 5)

    def test_nonpositive_elements_rejected(self):
        with pytest.raises(ConfigurationError):
            PDNMesh(5, 5, r_grid=0)
        with pytest.raises(ConfigurationError):
            PDNMesh(5, 5, c_node=-1e-12)

    def test_bad_strength_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            PDNMesh(5, 5, supply_strength=np.ones((4, 5)))

    def test_nonpositive_strength_rejected(self):
        s = np.ones((5, 5))
        s[0, 0] = 0
        with pytest.raises(ConfigurationError):
            PDNMesh(5, 5, supply_strength=s)

    def test_node_index_bounds(self, mesh):
        with pytest.raises(ConfigurationError):
            mesh.node_index(15, 0)


class TestCouplingProfile:
    def test_profile_positive_and_peaked(self, mesh):
        profile = mesh.coupling_profile((7, 7))
        assert np.all(profile >= 0)
        assert profile.argmax() == 7 * mesh.nx + 7
