"""Property-based tests (hypothesis) for the streaming accumulators.

The contract under test (see :mod:`repro.analysis.streaming`):

* streamed statistics match the batch NumPy computation to 1e-10 on
  arbitrary float matrices, for arbitrary chunk splits;
* on integer-valued inputs (the acquisition regime: int16 readouts,
  0..8 Hamming-weight hypotheses) results are **bit-identical** across
  chunkings and merge orders;
* Welford's variance is non-negative for any input.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis.streaming import (
    StreamingPearson,
    StreamingWelchT,
    SumMoments,
    WelfordMoments,
)
from repro.analysis.tvla import fixed_vs_random_t

floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=64
)


@st.composite
def float_matrix(draw, max_rows=64, max_cols=8, min_rows=2):
    rows = draw(st.integers(min_rows, max_rows))
    cols = draw(st.integers(1, max_cols))
    return draw(hnp.arrays(np.float64, (rows, cols), elements=floats))


@st.composite
def conditioned_matrix(draw, max_rows=64, max_cols=6, min_rows=3):
    """A float matrix normalized to zero mean / unit std per column —
    the "well-scaled data" regime of the 1e-10 agreement contract
    (near-constant columns at large offsets are Welford's job and are
    stressed separately).

    Constructive rather than ``assume``-filtered: planting a ±spread
    pair in the first two rows guarantees every column's std is at
    least ``spread / sqrt(rows)`` — far above the degenerate-scale
    threshold — so no draw is ever rejected.
    """
    mat = draw(float_matrix(max_rows=max_rows, max_cols=max_cols, min_rows=min_rows))
    spread = 1.0 + float(np.abs(mat).max())
    mat[0, :] = spread
    mat[1, :] = -spread
    return (mat - mat.mean(axis=0)) / mat.std(axis=0)


@st.composite
def int_xy(draw, max_rows=64):
    """An integer hypothesis/trace pair in the acquisition regime."""
    rows = draw(st.integers(2, max_rows))
    k = draw(st.integers(1, 4))
    w = draw(st.integers(1, 6))
    x = draw(
        hnp.arrays(np.int64, (rows, k), elements=st.integers(0, 8))
    )
    y = draw(
        hnp.arrays(np.int16, (rows, w), elements=st.integers(-2048, 2047))
    )
    return x, y


@st.composite
def split_points(draw, n):
    """A sorted list of cut positions partitioning ``range(n)``."""
    n_cuts = draw(st.integers(0, min(6, n - 1)))
    cuts = draw(
        st.lists(
            st.integers(1, n - 1), min_size=n_cuts, max_size=n_cuts, unique=True
        )
    )
    return sorted(cuts)


def chunks_of(data, cuts):
    bounds = [0] + list(cuts) + [data.shape[0]]
    return [
        data[lo:hi] for lo, hi in zip(bounds, bounds[1:]) if hi > lo
    ]


class TestStreamedMatchesBatch:
    @given(st.data())
    @settings(max_examples=60)
    def test_moments_match_numpy_for_floats(self, data):
        mat = data.draw(float_matrix())
        cuts = data.draw(split_points(mat.shape[0]))
        peak = float(np.abs(mat).max())
        # Raw-sums accuracy is bounded by eps * n * peak^2 (variance)
        # and eps * n * peak (mean); scale the tolerances accordingly.
        mean_atol = 1e-13 * mat.shape[0] * (1.0 + peak)
        var_atol = 1e-12 * (1.0 + peak**2)
        for cls in (SumMoments, WelfordMoments):
            acc = cls(mat.shape[1])
            for chunk in chunks_of(mat, cuts):
                acc.update(chunk)
            n, mean, var = acc.finalize()
            assert n == mat.shape[0]
            np.testing.assert_allclose(
                mean, mat.mean(axis=0), rtol=1e-10, atol=mean_atol
            )
            np.testing.assert_allclose(
                var, mat.var(axis=0, ddof=1), rtol=1e-6, atol=var_atol
            )

    @given(st.data())
    @settings(max_examples=40)
    def test_pearson_matches_corrcoef_for_floats(self, data):
        xy = data.draw(conditioned_matrix(min_rows=3, max_cols=6))
        k = data.draw(st.integers(1, xy.shape[1]))
        x, y = xy[:, :k], xy[:, k - 1 :]
        cuts = data.draw(split_points(x.shape[0]))
        acc = StreamingPearson(x.shape[1], y.shape[1])
        for cx, cy in zip(chunks_of(x, cuts), chunks_of(y, cuts)):
            acc.update(cx, cy)
        full = np.corrcoef(np.hstack([x, y]), rowvar=False)
        expected = np.nan_to_num(
            np.atleast_2d(full)[: x.shape[1], x.shape[1] :], nan=0.0
        )
        np.testing.assert_allclose(acc.finalize(), expected, atol=1e-10)

    @given(st.data())
    @settings(max_examples=40)
    def test_welch_matches_batch_for_floats(self, data):
        pool = data.draw(conditioned_matrix(min_rows=8, max_rows=64, max_cols=5))
        n_fixed = data.draw(st.integers(2, pool.shape[0] - 2))
        fixed = pool[:n_fixed].copy()
        rand = pool[n_fixed:].copy()
        # Plant a +/-2 pair in each group: every column's group std is
        # then >= 2/sqrt(rows) > 0.25 (rows <= 62), keeping both Welch
        # denominators well away from zero without rejecting draws.
        for group in (fixed, rand):
            group[0, :] = 2.0
            group[1, :] = -2.0
        cuts = data.draw(split_points(fixed.shape[0]))
        acc = StreamingWelchT(fixed.shape[1])
        for chunk in chunks_of(fixed, cuts):
            acc.update_fixed(chunk)
        acc.update_random(rand)
        expected = fixed_vs_random_t(fixed, rand).t_statistics
        np.testing.assert_allclose(acc.finalize(), expected, rtol=1e-6, atol=1e-10)


class TestBitReproducibility:
    @given(st.data())
    @settings(max_examples=60)
    def test_pearson_exact_across_chunkings(self, data):
        x, y = data.draw(int_xy())
        reference = (
            StreamingPearson(x.shape[1], y.shape[1]).update(x, y).finalize()
        )
        cuts = data.draw(split_points(x.shape[0]))
        acc = StreamingPearson(x.shape[1], y.shape[1])
        for cx, cy in zip(chunks_of(x, cuts), chunks_of(y, cuts)):
            acc.update(cx, cy)
        np.testing.assert_array_equal(acc.finalize(), reference)

    @given(st.data())
    @settings(max_examples=60)
    def test_pearson_exact_across_merge_orders(self, data):
        x, y = data.draw(int_xy())
        reference = (
            StreamingPearson(x.shape[1], y.shape[1]).update(x, y).finalize()
        )
        cuts = data.draw(split_points(x.shape[0]))
        parts = [
            StreamingPearson(x.shape[1], y.shape[1]).update(cx, cy)
            for cx, cy in zip(chunks_of(x, cuts), chunks_of(y, cuts))
        ]
        order = data.draw(st.permutations(range(len(parts))))
        acc = StreamingPearson(x.shape[1], y.shape[1])
        for i in order:
            acc.merge(parts[i])
        np.testing.assert_array_equal(acc.finalize(), reference)

    @given(st.data())
    @settings(max_examples=60)
    def test_sum_moments_exact_across_merge_orders(self, data):
        _, y = data.draw(int_xy())
        reference = SumMoments(y.shape[1]).update(y).finalize()
        cuts = data.draw(split_points(y.shape[0]))
        parts = [SumMoments(y.shape[1]).update(c) for c in chunks_of(y, cuts)]
        order = data.draw(st.permutations(range(len(parts))))
        acc = SumMoments(y.shape[1])
        for i in order:
            acc.merge(parts[i])
        n, mean, var = acc.finalize()
        assert n == reference[0]
        np.testing.assert_array_equal(mean, reference[1])
        np.testing.assert_array_equal(var, reference[2])


class TestWelfordStability:
    @given(st.data())
    @settings(max_examples=80)
    def test_variance_never_negative(self, data):
        mat = data.draw(float_matrix())
        # Inflict a large common offset: the regime where naive
        # sum-of-squares goes negative.
        offset = data.draw(st.floats(-1e12, 1e12, allow_nan=False))
        mat = mat + offset
        cuts = data.draw(split_points(mat.shape[0]))
        acc = WelfordMoments(mat.shape[1])
        for chunk in chunks_of(mat, cuts):
            acc.update(chunk)
        assert np.all(acc.variance(ddof=1) >= 0.0)
        assert np.all(acc.variance(ddof=0) >= 0.0)

    @given(st.data())
    @settings(max_examples=40)
    def test_merge_variance_never_negative(self, data):
        a = data.draw(float_matrix())
        b = data.draw(
            hnp.arrays(
                np.float64,
                (data.draw(st.integers(2, 64)), a.shape[1]),
                elements=floats,
            )
        )
        acc = WelfordMoments(a.shape[1]).update(a)
        acc.merge(WelfordMoments(a.shape[1]).update(b))
        assert np.all(acc.variance() >= 0.0)


@st.composite
def stacked_int_xy(draw, max_rows=48):
    """An integer grouped-hypothesis/trace pair (the stacked CPA
    regime: G groups of 0..8 hypotheses against one trace stream)."""
    rows = draw(st.integers(2, max_rows))
    groups = draw(st.integers(1, 3))
    nvars = draw(st.integers(1, 4))
    w = draw(st.integers(1, 5))
    x = draw(
        hnp.arrays(np.int64, (rows, groups, nvars), elements=st.integers(0, 8))
    )
    y = draw(
        hnp.arrays(np.int16, (rows, w), elements=st.integers(-2048, 2047))
    )
    return x, y


class TestStackedAccumulators:
    @given(st.data())
    @settings(max_examples=60)
    def test_stacked_matches_per_group_bit_for_bit(self, data):
        from repro.analysis.streaming import (
            SharedTraceMoments,
            StackedStreamingPearson,
        )

        x, y = data.draw(stacked_int_xy())
        rows, groups, nvars = x.shape
        stacked = StackedStreamingPearson(groups, nvars, y.shape[1])
        cuts = data.draw(split_points(rows))
        for cx, cy in zip(chunks_of(x, cuts), chunks_of(y, cuts)):
            stacked.update(cx, cy)
        rho = stacked.finalize()
        for g in range(groups):
            ref = StreamingPearson(nvars, y.shape[1]).update(x[:, g, :], y)
            np.testing.assert_array_equal(rho[g], ref.finalize())

    @given(st.data())
    @settings(max_examples=60)
    def test_stacked_exact_across_merge_orders(self, data):
        from repro.analysis.streaming import StackedStreamingPearson

        x, y = data.draw(stacked_int_xy())
        rows, groups, nvars = x.shape
        reference = (
            StackedStreamingPearson(groups, nvars, y.shape[1])
            .update(x, y)
            .finalize()
        )
        cuts = data.draw(split_points(rows))
        parts = [
            StackedStreamingPearson(groups, nvars, y.shape[1]).update(cx, cy)
            for cx, cy in zip(chunks_of(x, cuts), chunks_of(y, cuts))
        ]
        order = data.draw(st.permutations(range(len(parts))))
        acc = StackedStreamingPearson(groups, nvars, y.shape[1])
        for i in order:
            acc.merge(parts[i])
        np.testing.assert_array_equal(acc.finalize(), reference)

    @given(st.data())
    @settings(max_examples=60)
    def test_shared_moments_exact_across_merge_orders(self, data):
        from repro.analysis.streaming import SharedTraceMoments

        _, y = data.draw(stacked_int_xy())
        reference = SharedTraceMoments(y.shape[1]).update(y)
        cuts = data.draw(split_points(y.shape[0]))
        parts = [
            SharedTraceMoments(y.shape[1]).update(c) for c in chunks_of(y, cuts)
        ]
        order = data.draw(st.permutations(range(len(parts))))
        acc = SharedTraceMoments(y.shape[1])
        for i in order:
            acc.merge(parts[i])
        assert acc.n == reference.n
        np.testing.assert_array_equal(acc._s, reference._s)
        np.testing.assert_array_equal(acc._s2, reference._s2)

    @given(st.data())
    @settings(max_examples=40)
    def test_fold_sums_equals_update_for_integers(self, data):
        from repro.analysis.streaming import StackedStreamingPearson

        x, y = data.draw(stacked_int_xy())
        rows, groups, nvars = x.shape
        updated = StackedStreamingPearson(groups, nvars, y.shape[1]).update(
            x, y
        )
        flat = x.reshape(rows, -1).astype(np.float64)
        y64 = y.astype(np.float64)
        folded = StackedStreamingPearson(groups, nvars, y.shape[1]).fold_sums(
            rows,
            flat.sum(axis=0),
            (flat**2).sum(axis=0),
            flat.T @ y64,
            y64.sum(axis=0),
            np.einsum("ij,ij->j", y64, y64),
        )
        np.testing.assert_array_equal(folded.finalize(), updated.finalize())
