"""Tests for structural netlists: construction, validation, graphs and
combinational-loop detection."""

import pytest

from repro.errors import NetlistError
from repro.fpga.netlist import Cell, Net, Netlist
from repro.fpga.primitives import CARRY4, DSP48E1, FDRE, LUT


def _ro_netlist() -> Netlist:
    """Inverter looped through an AND gate: a classic RO."""
    nl = Netlist("ro")
    nl.add_port("en", "in")
    inv = nl.add_cell(LUT.inverter("inv"))
    gate = nl.add_cell(LUT.and2("gate"))
    nl.connect("n_en", ("en", "O"), [("gate", "I0")])
    nl.connect("n_fb", ("inv", "O"), [("gate", "I1")])
    nl.connect("n_loop", ("gate", "O"), [("inv", "I0")])
    return nl


class TestConstruction:
    def test_add_cell_defaults_to_primitive_name(self):
        nl = Netlist("t")
        cell = nl.add_cell(LUT.inverter("inv"))
        assert cell.name == "inv"
        assert nl.cells["inv"].type == "LUT"

    def test_duplicate_cell_rejected(self):
        nl = Netlist("t")
        nl.add_cell(LUT.inverter("inv"))
        with pytest.raises(NetlistError):
            nl.add_cell(LUT.inverter("inv"))

    def test_duplicate_net_rejected(self):
        nl = Netlist("t")
        nl.add_net("n")
        with pytest.raises(NetlistError):
            nl.add_net("n")

    def test_duplicate_port_rejected(self):
        nl = Netlist("t")
        nl.add_port("p", "in")
        with pytest.raises(NetlistError):
            nl.add_port("p", "out")

    def test_bad_port_direction_rejected(self):
        with pytest.raises(NetlistError):
            Netlist("t").add_port("p", "inout")

    def test_double_driver_rejected(self):
        net = Net("n")
        net.set_driver("a", "O")
        with pytest.raises(NetlistError):
            net.set_driver("b", "O")

    def test_counts_by_type(self):
        nl = _ro_netlist()
        assert nl.count_by_type() == {"LUT": 2}

    def test_cells_of_type(self):
        nl = _ro_netlist()
        assert {c.name for c in nl.cells_of_type("LUT")} == {"inv", "gate"}


class TestValidation:
    def test_valid_netlist_passes(self):
        _ro_netlist().validate()

    def test_undriven_net_rejected(self):
        nl = Netlist("t")
        nl.add_cell(LUT.inverter("inv"))
        net = nl.add_net("n")
        net.add_sink("inv", "I0")
        with pytest.raises(NetlistError, match="no driver"):
            nl.validate()

    def test_sinkless_net_rejected(self):
        nl = Netlist("t")
        nl.add_cell(LUT.inverter("inv"))
        net = nl.add_net("n")
        net.set_driver("inv", "O")
        with pytest.raises(NetlistError, match="no sinks"):
            nl.validate()

    def test_undeclared_driver_cell_rejected(self):
        nl = Netlist("t")
        nl.add_cell(LUT.inverter("inv"))
        nl.connect("n", ("ghost", "O"), [("inv", "I0")])
        with pytest.raises(NetlistError, match="not declared"):
            nl.validate()

    def test_undeclared_sink_cell_rejected(self):
        nl = Netlist("t")
        nl.add_cell(LUT.inverter("inv"))
        nl.connect("n", ("inv", "O"), [("ghost", "I0")])
        with pytest.raises(NetlistError, match="not declared"):
            nl.validate()


class TestGraph:
    def test_graph_edges_follow_nets(self):
        g = _ro_netlist().graph()
        assert g.has_edge("gate", "inv")
        assert g.has_edge("inv", "gate")
        assert g.has_edge("en", "gate")

    def test_graph_nodes_typed(self):
        g = _ro_netlist().graph()
        assert g.nodes["inv"]["type"] == "LUT"
        assert g.nodes["en"]["type"] == "PORT"


class TestSequentialBarriers:
    def test_ff_is_barrier(self):
        assert Cell("f", FDRE("f")).is_sequential_barrier

    def test_lut_is_not_barrier(self):
        assert not Cell("l", LUT.inverter("l")).is_sequential_barrier

    def test_carry_is_not_barrier(self):
        assert not Cell("c", CARRY4("c")).is_sequential_barrier

    def test_combinational_dsp_is_not_barrier(self):
        dsp = DSP48E1.leakydsp_config("d")
        assert not Cell("d", dsp).is_sequential_barrier

    def test_registered_dsp_is_barrier(self):
        dsp = DSP48E1.leakydsp_config("d", last=True)
        assert Cell("d", dsp).is_sequential_barrier


class TestLoopDetection:
    def test_ro_loop_found(self):
        loops = _ro_netlist().combinational_loops()
        assert len(loops) == 1
        assert set(loops[0]) == {"inv", "gate"}

    def test_ff_breaks_loop(self):
        nl = Netlist("t")
        nl.add_cell(LUT.inverter("inv"))
        nl.add_cell(FDRE("ff"))
        nl.connect("n1", ("inv", "O"), [("ff", "D")])
        nl.connect("n2", ("ff", "Q"), [("inv", "I0")])
        assert nl.combinational_loops() == []

    def test_registered_dsp_breaks_loop(self):
        nl = Netlist("t")
        nl.add_cell(DSP48E1.leakydsp_config("d", last=True))
        nl.add_cell(LUT.inverter("inv"))
        nl.connect("n1", ("d", "P"), [("inv", "I0")])
        nl.connect("n2", ("inv", "O"), [("d", "A")])
        assert nl.combinational_loops() == []

    def test_combinational_dsp_loop_found(self):
        nl = Netlist("t")
        nl.add_cell(DSP48E1.leakydsp_config("d"))
        nl.add_cell(LUT.inverter("inv"))
        nl.connect("n1", ("d", "P"), [("inv", "I0")])
        nl.connect("n2", ("inv", "O"), [("d", "A")])
        assert len(nl.combinational_loops()) == 1

    def test_acyclic_chain_clean(self):
        nl = Netlist("t")
        nl.add_port("in", "in")
        prev = ("in", "O")
        for i in range(5):
            nl.add_cell(LUT.inverter(f"l{i}"))
            nl.connect(f"n{i}", prev, [(f"l{i}", "I0")])
            prev = (f"l{i}", "O")
        assert nl.combinational_loops() == []
