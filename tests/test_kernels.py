"""Tests for the fused acquisition kernel layer (``repro.kernels``).

The load-bearing properties:

* the precomputed step-response basis is the reference filter's exact
  zero-state response (basis-vs-lfilter equivalence);
* the fused kernel and the reference kernel produce identical readouts
  and ciphertexts from the same RNG stream (differential tests, plus a
  hypothesis property over trace length, clock ratio and batch size);
* worker count and kernel choice commute with the engine's determinism
  guarantees;
* the profiling layer accumulates and merges stage costs correctly.
"""

import dataclasses
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import signal

from repro.config import DEFAULT_CONSTANTS
from repro.core.calibration import calibrate
from repro.core.leaky_dsp import LeakyDSP
from repro.core.sensor import SamplingMethod, check_table_range
from repro.errors import ConfigurationError, SensorRangeError
from repro.fpga.placement import Pblock, Placer
from repro.kernels import (
    LEAD_IN_CYCLES,
    AcquisitionKernel,
    FusedAcquisitionKernel,
    ReferenceAcquisitionKernel,
    StageProfile,
    available_kernels,
    default_kernel_name,
    get_kernel,
    set_default_kernel,
    step_response_basis,
    unit_boxcars,
)
from repro.pdn.coupling import CouplingModel
from repro.runtime import Engine
from repro.timing.sampling import ClockSpec
from repro.traces.acquisition import AESTraceAcquisition
from repro.victims.aes import AES128, AESHardwareModel

KEY = bytes(range(16))


@pytest.fixture(scope="module")
def rig(basys3_device):
    """A placed, calibrated sensor plus the shared PDN surrogate."""
    coupling = CouplingModel(basys3_device)
    placer = Placer(basys3_device)
    sensor = LeakyDSP(device=basys3_device, seed=7)
    sensor.place(
        placer, pblock=Pblock.from_region(basys3_device.region_by_name("X1Y0"))
    )
    calibrate(sensor, rng=0)
    return sensor, coupling


def make_acquisition(rig, kernel, aes_freq=20e6, sensor_freq=300e6):
    sensor, coupling = rig
    hw = AESHardwareModel(ClockSpec(aes_freq), ClockSpec(sensor_freq))
    return AESTraceAcquisition(sensor, coupling, hw, (10.0, 25.0), kernel=kernel)


# ----------------------------------------------------------------------
# Step-response basis
# ----------------------------------------------------------------------


class TestStepResponseBasis:
    def test_boxcars_cover_cycles(self):
        box = unit_boxcars(3, 4, 20, lead_in_cycles=1)
        assert box.shape == (3, 20)
        assert box[0, 4:8].sum() == 4 and box[0].sum() == 4
        assert box[2, 12:16].sum() == 4

    def test_boxcars_clip_to_trace(self):
        box = unit_boxcars(3, 4, 10, lead_in_cycles=1)
        # Cycle 2 starts at sample 12, beyond the 10-sample trace.
        assert box[2].sum() == 0
        assert box[1, 8:10].sum() == 2

    def test_matches_reference_filter_exactly(self, rig):
        """droop(hd) == base + per_bit * (hd @ B), vs the sequential
        reference pipeline (current_waveform -> lfilter)."""
        _, coupling = rig
        hw = AESHardwareModel(ClockSpec(20e6), ClockSpec(300e6))
        dt = hw.sensor_clock.period
        n_samples = hw.samples_per_block + 2 * hw.samples_per_cycle
        rng = np.random.default_rng(3)
        hd = rng.integers(0, 128, size=(32, AES128.CYCLES_PER_BLOCK))

        currents = hw.current_waveform(hd, n_samples=n_samples)
        reference = coupling.filter_currents(currents, dt)

        pole = float(np.exp(-dt / coupling.constants.pdn_tau))
        basis = step_response_basis(
            AES128.CYCLES_PER_BLOCK,
            hw.samples_per_cycle,
            n_samples,
            LEAD_IN_CYCLES,
            pole,
        )
        fused = (
            hw.constants.aes_base_current
            + hw.constants.aes_current_per_bit * (hd.astype(np.float64) @ basis.matrix)
        )
        # Exact in real arithmetic; ULP-level float differences from the
        # matmul's summation order.
        np.testing.assert_allclose(fused, reference, rtol=0, atol=1e-12)

    def test_cache_returns_same_object(self):
        a = step_response_basis(11, 15, 195, 1, 0.7)
        b = step_response_basis(11, 15, 195, 1, 0.7)
        assert a is b
        c = step_response_basis(11, 15, 195, 1, 0.8)
        assert c is not a

    def test_matrix_read_only(self):
        basis = step_response_basis(11, 15, 195, 1, 0.7)
        with pytest.raises(ValueError):
            basis.matrix[0, 0] = 1.0
        scaled = basis.scaled(2.0)
        scaled[0, 0] = 5.0  # scaled copies are private and writable

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_cycles=0, samples_per_cycle=1, n_samples=1, lead_in_cycles=0, pole=0.5),
            dict(n_cycles=1, samples_per_cycle=0, n_samples=1, lead_in_cycles=0, pole=0.5),
            dict(n_cycles=1, samples_per_cycle=1, n_samples=0, lead_in_cycles=0, pole=0.5),
            dict(n_cycles=1, samples_per_cycle=1, n_samples=1, lead_in_cycles=-1, pole=0.5),
            dict(n_cycles=1, samples_per_cycle=1, n_samples=1, lead_in_cycles=0, pole=1.0),
            dict(n_cycles=1, samples_per_cycle=1, n_samples=1, lead_in_cycles=0, pole=-0.1),
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            step_response_basis(**kwargs)


# ----------------------------------------------------------------------
# Filter-design cache (CouplingModel)
# ----------------------------------------------------------------------


class TestFilterDesignCache:
    def test_design_cached_per_dt(self, rig):
        _, coupling = rig
        d1 = coupling.filter_design(1 / 300e6)
        d2 = coupling.filter_design(1 / 300e6)
        assert d1 is d2
        d3 = coupling.filter_design(1 / 100e6)
        assert d3 is not d1

    def test_design_matches_lfilter_construction(self, rig):
        _, coupling = rig
        dt = 1 / 300e6
        b, den, zi = coupling.filter_design(dt)
        pole = float(np.exp(-dt / coupling.constants.pdn_tau))
        assert b == [1.0 - pole] and den == [1.0, -pole]
        np.testing.assert_allclose(zi, signal.lfilter_zi(b, den))

    def test_filter_currents_unchanged_by_cache(self, rig):
        _, coupling = rig
        dt = 1 / 300e6
        currents = np.linspace(0.0, 1e-2, 64).reshape(4, 16)
        out1 = coupling.filter_currents(currents, dt)
        out2 = coupling.filter_currents(currents, dt)  # cached design
        np.testing.assert_array_equal(out1, out2)


# ----------------------------------------------------------------------
# Kernel registry
# ----------------------------------------------------------------------


class TestKernelRegistry:
    def test_available_and_default(self):
        assert set(available_kernels()) == {"fused", "reference"}
        assert default_kernel_name() in available_kernels()

    def test_get_by_name_is_shared_instance(self):
        assert get_kernel("fused") is get_kernel("fused")
        assert isinstance(get_kernel("fused"), FusedAcquisitionKernel)
        assert isinstance(get_kernel("reference"), ReferenceAcquisitionKernel)

    def test_get_none_resolves_default(self):
        assert get_kernel(None).name == default_kernel_name()

    def test_instance_passthrough(self):
        kernel = FusedAcquisitionKernel()
        assert get_kernel(kernel) is kernel

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            get_kernel("vectorized")
        with pytest.raises(ConfigurationError):
            set_default_kernel("vectorized")

    def test_set_default_round_trips(self):
        previous = set_default_kernel("reference")
        try:
            assert default_kernel_name() == "reference"
            assert get_kernel(None).name == "reference"
        finally:
            set_default_kernel(previous)

    def test_fused_kernel_pickles_without_caches(self, rig):
        acq = make_acquisition(rig, "fused")
        aes = AES128(KEY)
        pts = np.random.default_rng(0).integers(0, 256, (8, 16), dtype=np.uint8)
        acq.acquire_block(aes, pts, np.random.default_rng(1), 60)
        assert acq.kernel._weights  # cache warm
        clone = pickle.loads(pickle.dumps(acq.kernel))
        assert clone._weights == {} and clone._scratch == {}
        # And the clone still acquires correctly.
        acq2 = make_acquisition(rig, clone)
        r1, _ = acq.acquire_block(aes, pts, np.random.default_rng(1), 60)
        r2, _ = acq2.acquire_block(aes, pts, np.random.default_rng(1), 60)
        np.testing.assert_array_equal(r1, r2)


# ----------------------------------------------------------------------
# Fused vs reference differential
# ----------------------------------------------------------------------


class TestFusedMatchesReference:
    @pytest.mark.parametrize("seed", [0, 7, 99])
    def test_identical_readouts_and_ciphertexts(self, rig, seed):
        """Same RNG stream, same readouts: the fused rewrite changes
        summation order (ULP-level voltage differences) but no rounded
        integer readout on these fixed seeds."""
        acq_f = make_acquisition(rig, "fused")
        acq_r = make_acquisition(rig, "reference")
        aes = AES128(KEY)
        n_samples = acq_f.default_n_samples()
        pts = np.random.default_rng(seed).integers(0, 256, (512, 16), dtype=np.uint8)
        r_f, c_f = acq_f.acquire_block(aes, pts, np.random.default_rng(seed), n_samples)
        r_r, c_r = acq_r.acquire_block(aes, pts, np.random.default_rng(seed), n_samples)
        np.testing.assert_array_equal(r_f, r_r)
        np.testing.assert_array_equal(c_f, c_r)
        assert r_f.dtype == np.int16 and c_f.dtype == np.uint8

    @settings(max_examples=20, deadline=None)
    @given(
        n_samples=st.integers(min_value=1, max_value=240),
        aes_freq=st.sampled_from([10e6, 20e6, 50e6, 100e6]),
        m=st.integers(min_value=1, max_value=48),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_equivalence_property(self, rig, n_samples, aes_freq, m, seed):
        """Fused == reference across trace lengths, clock ratios and
        batch sizes, not just the default configuration."""
        acq_f = make_acquisition(rig, "fused", aes_freq=aes_freq)
        acq_r = make_acquisition(rig, "reference", aes_freq=aes_freq)
        aes = AES128(KEY)
        pts = np.random.default_rng(seed).integers(0, 256, (m, 16), dtype=np.uint8)
        r_f, c_f = acq_f.acquire_block(
            aes, pts, np.random.default_rng(seed), n_samples
        )
        r_r, c_r = acq_r.acquire_block(
            aes, pts, np.random.default_rng(seed), n_samples
        )
        np.testing.assert_array_equal(c_f, c_r)
        np.testing.assert_array_equal(r_f, r_r)

    def test_drift_noise_falls_back_to_model_sampler(self, rig):
        """With drift enabled the fast white-noise path is bypassed,
        and the fused kernel still matches the reference stream."""
        from repro.pdn.noise import NoiseModel

        sensor, coupling = rig
        hw = AESHardwareModel(ClockSpec(20e6), ClockSpec(300e6))
        noise = NoiseModel(white_rms=1.6e-3, drift_rms=8e-6)
        acq_f = AESTraceAcquisition(
            sensor, coupling, hw, (10.0, 25.0), noise=noise, kernel="fused"
        )
        acq_r = AESTraceAcquisition(
            sensor, coupling, hw, (10.0, 25.0), noise=noise, kernel="reference"
        )
        aes = AES128(KEY)
        n_samples = acq_f.default_n_samples()
        pts = np.random.default_rng(5).integers(0, 256, (64, 16), dtype=np.uint8)
        r_f, _ = acq_f.acquire_block(aes, pts, np.random.default_rng(5), n_samples)
        r_r, _ = acq_r.acquire_block(aes, pts, np.random.default_rng(5), n_samples)
        np.testing.assert_array_equal(r_f, r_r)

    def test_engine_collect_identical_across_kernels_and_workers(self, rig):
        """The full campaign surface: fused/reference x workers 1/2/4
        all produce the same TraceSet for a fixed seed."""
        reference = None
        for kernel in ("reference", "fused"):
            acq = make_acquisition(rig, kernel)
            for workers in (1, 2, 4):
                ts = Engine(workers=workers, shard_size=96).collect(
                    acq, 300, key=KEY, seed=11
                )
                if reference is None:
                    reference = ts
                else:
                    np.testing.assert_array_equal(ts.traces, reference.traces)
                    np.testing.assert_array_equal(
                        ts.ciphertexts, reference.ciphertexts
                    )

    def test_streamed_chunk_sizes_identical(self, rig):
        """Fused streaming accumulates bit-identically at any chunk
        size (the PR-2 guarantee holds on the new default path)."""
        from functools import partial

        from repro.attacks.cpa import CPAAttack

        acq = make_acquisition(rig, "fused")
        n_samples = acq.default_n_samples()
        results = []
        for chunk_size, workers in ((None, 1), (64, 2), (17, 1)):
            attack = Engine(workers=workers, shard_size=128).stream_attack(
                acq,
                384,
                key=KEY,
                consumer_factory=partial(CPAAttack, n_samples),
                seed=4,
                chunk_size=chunk_size,
            )
            results.append(attack.correlations())
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[0], results[2])

    def test_timings_dict_back_compat(self, rig):
        acq = make_acquisition(rig, "fused")
        aes = AES128(KEY)
        pts = np.random.default_rng(0).integers(0, 256, (16, 16), dtype=np.uint8)
        timings = {}
        with pytest.warns(DeprecationWarning, match="span"):
            acq.acquire_block(
                aes, pts, np.random.default_rng(0), 60, timings=timings
            )
        assert {"aes", "pdn", "sensor"} <= set(timings)
        assert all(v >= 0 for v in timings.values())

    def test_metadata_records_kernel(self, rig):
        assert make_acquisition(rig, "fused").trace_metadata(KEY)["kernel"] == "fused"
        assert (
            make_acquisition(rig, "reference").trace_metadata(KEY)["kernel"]
            == "reference"
        )


# ----------------------------------------------------------------------
# Sensor range guard
# ----------------------------------------------------------------------


class TestSensorRangeGuard:
    def test_below_floor_raises(self, rig):
        sensor, _ = rig
        grid = sensor._moments_table()[0]
        with pytest.raises(SensorRangeError, match="operating floor"):
            check_table_range(sensor, np.array([grid[0] - 0.01]), grid)

    def test_above_ceiling_clamps(self, rig):
        """High-side excursions are genuine saturation: no error, and
        a voltage above the table's ceiling reads exactly like the
        ceiling itself (np.interp's benign top-edge clamp)."""
        sensor, _ = rig
        grid = sensor._moments_table()[0]
        check_table_range(sensor, np.array([grid[-1] + 0.05]), grid)
        above = sensor.sample_readouts(
            np.full(64, grid[-1] + 0.05),
            rng=np.random.default_rng(0),
            method=SamplingMethod.NORMAL,
        )
        at_edge = sensor.sample_readouts(
            np.full(64, grid[-1]),
            rng=np.random.default_rng(0),
            method=SamplingMethod.NORMAL,
        )
        np.testing.assert_array_equal(above, at_edge)

    def test_empty_input_is_fine(self, rig):
        sensor, _ = rig
        grid = sensor._moments_table()[0]
        check_table_range(sensor, np.array([]), grid)

    @pytest.mark.parametrize("kernel", ["fused", "reference"])
    def test_acquisition_guard_fires_on_deep_droop(self, rig, kernel):
        """An out-of-model operating point (enormous per-bit current)
        raises instead of silently flattening the droop — on both
        kernels."""
        sensor, coupling = rig
        constants = dataclasses.replace(
            DEFAULT_CONSTANTS, aes_current_per_bit=0.5, aes_base_current=0.1
        )
        hw = AESHardwareModel(
            ClockSpec(20e6), ClockSpec(300e6), constants=constants
        )
        acq = AESTraceAcquisition(sensor, coupling, hw, (10.0, 25.0), kernel=kernel)
        aes = AES128(KEY)
        pts = np.random.default_rng(0).integers(0, 256, (8, 16), dtype=np.uint8)
        with pytest.raises(SensorRangeError):
            acq.acquire_block(
                aes, pts, np.random.default_rng(0), acq.default_n_samples()
            )


# ----------------------------------------------------------------------
# Stage profiling
# ----------------------------------------------------------------------


class TestStageProfile:
    def test_stage_context_accumulates(self):
        profile = StageProfile()
        with profile.stage("aes", items=10) as acct:
            acct.account(np.zeros(100, dtype=np.float64))
        with profile.stage("aes", items=5):
            pass
        stats = profile.stages["aes"]
        assert stats.calls == 2 and stats.items == 15
        assert stats.nbytes == 800
        assert stats.seconds > 0
        assert stats.items_per_second > 0

    def test_merge_is_commutative_fold(self):
        a, b = StageProfile(), StageProfile()
        a.add("aes", 1.0, nbytes=10, items=2)
        a.add("pdn", 0.5, items=1)
        b.add("aes", 2.0, nbytes=30, items=3)
        b.add("sensor", 0.25)
        a.merge(b)
        assert a.stage_seconds() == {"aes": 3.0, "pdn": 0.5, "sensor": 0.25}
        assert a.stage_nbytes() == {"aes": 40, "pdn": 0, "sensor": 0}
        assert a.stages["aes"].items == 5
        assert a.total_seconds == pytest.approx(3.75)

    def test_as_dict_and_summary(self):
        profile = StageProfile()
        profile.add("sensor", 2.0, nbytes=2_000_000, items=1000)
        d = profile.as_dict()
        assert d["sensor"]["items_per_second"] == pytest.approx(500.0)
        text = profile.summary()
        assert "sensor" in text and "2.000s" in text and "/s" in text
        assert StageProfile().summary() == "no stages recorded"

    def test_exception_still_records_stage(self):
        profile = StageProfile()
        with pytest.raises(RuntimeError):
            with profile.stage("pdn"):
                raise RuntimeError("boom")
        assert profile.stages["pdn"].calls == 1

    def test_engine_metrics_carry_stage_bytes(self, rig):
        acq = make_acquisition(rig, "fused")
        engine = Engine(workers=1, shard_size=64)
        engine.collect(acq, 128, key=KEY, seed=0)
        metrics = engine.last_metrics
        assert {"aes", "pdn", "sensor"} <= set(metrics.stage_totals())
        nbytes = metrics.stage_nbytes_totals()
        assert nbytes["sensor"] > 0
        rates = metrics.stage_items_per_second()
        assert all(v > 0 for v in rates.values())
        shard = metrics.shards[0]
        assert "aes" in shard.summary() and "items" in shard.summary()

    def test_progress_detail_carries_shard_summary(self, rig):
        acq = make_acquisition(rig, "fused")
        details = []
        engine = Engine(
            workers=1, shard_size=64, progress=lambda ev: details.append(ev.detail)
        )
        engine.collect(acq, 128, key=KEY, seed=0)
        assert details and all("shard" in d for d in details)
