"""Tests for the power-virus bank."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PlacementError
from repro.fpga.placement import Pblock, Placer
from repro.pdn.coupling import CouplingModel
from repro.victims.power_virus import PowerVirusBank


@pytest.fixture(scope="module")
def placed_virus(basys3_device):
    virus = PowerVirusBank(basys3_device, n_instances=800, n_groups=8)
    placer = Placer(basys3_device)
    blocks = [
        Pblock("left", 0, 0, 20, 59),
        Pblock("right", 21, 0, 41, 59),
    ]
    virus.place(placer, blocks)
    return virus


@pytest.fixture(scope="module")
def coupling(basys3_device):
    return CouplingModel(basys3_device)


class TestConstruction:
    def test_uneven_groups_rejected(self, basys3_device):
        with pytest.raises(ConfigurationError):
            PowerVirusBank(basys3_device, n_instances=100, n_groups=7)

    def test_nonpositive_rejected(self, basys3_device):
        with pytest.raises(ConfigurationError):
            PowerVirusBank(basys3_device, n_instances=0)

    def test_instances_per_group(self, basys3_device):
        virus = PowerVirusBank(basys3_device, 800, 8)
        assert virus.instances_per_group == 100


class TestNetlist:
    def test_one_lut_one_ff_per_instance(self, basys3_device):
        virus = PowerVirusBank(basys3_device, 40, 8)
        counts = virus.netlist().count_by_type()
        assert counts == {"LUT": 40, "FDRE": 40}

    def test_group_enable_ports(self, basys3_device):
        virus = PowerVirusBank(basys3_device, 40, 8)
        nl = virus.netlist()
        assert {f"enable{g}" for g in range(8)} <= set(nl.ports)

    def test_each_instance_is_an_ro(self, basys3_device):
        virus = PowerVirusBank(basys3_device, 16, 4)
        loops = virus.netlist().combinational_loops()
        assert len(loops) == 16  # one loop per instance

    def test_netlist_cached(self, basys3_device):
        virus = PowerVirusBank(basys3_device, 8, 4)
        assert virus.netlist() is virus.netlist()


class TestPlacement:
    def test_positions_shape(self, placed_virus):
        assert placed_virus.positions.shape == (800, 2)

    def test_groups_spatially_interleaved(self, placed_virus):
        """Round-robin group assignment gives every group nearly the
        same centroid — the paper's 'evenly-distributed' groups."""
        pos = placed_virus.positions
        centroids = np.array([
            pos[placed_virus.group_of == g].mean(axis=0)
            for g in range(placed_virus.n_groups)
        ])
        spread = np.linalg.norm(centroids - centroids.mean(axis=0), axis=1)
        assert spread.max() < 3.0

    def test_group_sizes_equal(self, placed_virus):
        counts = np.bincount(placed_virus.group_of)
        assert np.all(counts == 100)

    def test_positions_inside_pblocks(self, placed_virus):
        pos = placed_virus.positions
        assert pos[:, 0].max() <= 41
        assert pos[:, 1].max() <= 59

    def test_no_pblock_rejected(self, basys3_device):
        virus = PowerVirusBank(basys3_device, 8, 4)
        with pytest.raises(PlacementError):
            virus.place(Placer(basys3_device), [])

    def test_unplaced_access_raises(self, basys3_device):
        virus = PowerVirusBank(basys3_device, 8, 4)
        with pytest.raises(PlacementError):
            _ = virus.positions


class TestCurrents:
    def test_group_currents_scale(self, placed_virus):
        c = placed_virus.constants.virus_current_per_instance
        one = placed_virus.group_currents(np.array([1, 0, 0, 0, 0, 0, 0, 0]))
        assert one[0] == pytest.approx(100 * c)
        assert one[1:].sum() == 0

    def test_activation_matrix(self, placed_virus):
        enables = np.zeros((8, 5))
        enables[2, 3] = 1
        currents = placed_virus.group_currents(enables)
        assert currents.shape == (8, 5)
        assert currents[2, 3] > 0

    def test_wrong_rows_rejected(self, placed_virus):
        with pytest.raises(ConfigurationError):
            placed_virus.group_currents(np.ones(5))


class TestDroop:
    def test_droop_scales_with_groups(self, placed_virus, coupling):
        pos = (30.0, 25.0)
        droops = [
            placed_virus.droop_at(
                coupling, pos, np.concatenate([np.ones(k), np.zeros(8 - k)])
            )
            for k in range(9)
        ]
        assert all(b > a for a, b in zip(droops, droops[1:]))
        # Evenly-spread groups: droop is nearly linear in group count.
        droops = np.array(droops)
        steps = np.diff(droops)
        assert steps.std() / steps.mean() < 0.05

    def test_group_kappas_mean_semantics(self, placed_virus, coupling):
        """mean-kappa @ total-current equals the exact per-instance sum."""
        from repro.pdn.coupling import LoadSite

        pos = (30.0, 25.0)
        kappas = placed_virus.group_kappas(coupling, pos)
        currents = placed_virus.group_currents(np.ones(8))
        via_groups = float(kappas @ currents)
        loads = [LoadSite(x, y) for x, y in placed_virus.positions]
        per_instance = coupling.coupling_vector(pos, loads).sum()
        exact = per_instance * placed_virus.constants.virus_current_per_instance
        assert via_groups == pytest.approx(exact, rel=1e-12)

    def test_nearer_sensor_sees_more(self, placed_virus, coupling):
        near = placed_virus.droop_at(coupling, (20.0, 30.0), np.ones(8))
        far = placed_virus.droop_at(coupling, (20.0, 140.0), np.ones(8))
        assert near > far > 0
