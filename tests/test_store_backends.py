"""Tests for the tiered remote block store and the shard scheduler.

The load-bearing properties extend the blockstore contract across a
wire: remote cache state (off, cold, warm, corrupted, *down*) can never
change a result — only its cost.  Bytes that crossed the network are
digest-verified before the local tier trusts them; a dead server
degrades to local-only with a warning, never a crash; and the
work-stealing schedule reorders only *when* shards run, never what
they compute.
"""

import multiprocessing
import threading
import time
import warnings

import numpy as np
import pytest

from repro.core.calibration import calibrate
from repro.core.leaky_dsp import LeakyDSP
from repro.errors import CacheError, CacheIntegrityWarning, RemoteCacheError
from repro.fpga.placement import Pblock, Placer
from repro.pdn.coupling import CouplingModel
from repro.runtime import Engine
from repro.runtime.scheduler import (
    RemotePrefetcher,
    ShardTask,
    classify_tasks,
    dispatch,
    flatten_keys,
    static_groups,
    steal_order,
    validate_schedule,
)
from repro.runtime.sharding import Shard
from repro.timing.sampling import ClockSpec
from repro.traces.acquisition import AESTraceAcquisition
from repro.traces.blockstore import BlockStore, open_store, verify_blob
from repro.traces.store_backends import (
    CacheServer,
    HTTPBackend,
    LocalDirBackend,
    StoreBackend,
    TieredStore,
    contains_many,
    validate_key,
)
from repro.victims.aes import AESHardwareModel

KEY = bytes(range(16))
N_TRACES = 600
SHARD = 256  # -> 3 shards

K1 = "a" * 64
K2 = "b" * 64
K3 = "c" * 64


@pytest.fixture(scope="module")
def acquisition(basys3_device):
    coupling = CouplingModel(basys3_device)
    placer = Placer(basys3_device)
    sensor = LeakyDSP(device=basys3_device, seed=7)
    sensor.place(
        placer, pblock=Pblock.from_region(basys3_device.region_by_name("X1Y0"))
    )
    calibrate(sensor, rng=0)
    hw = AESHardwareModel(ClockSpec(20e6), ClockSpec(300e6))
    return AESTraceAcquisition(sensor, coupling, hw, (10.0, 25.0))


@pytest.fixture()
def server(tmp_path):
    with CacheServer(tmp_path / "served", port=0) as srv:
        yield srv


def _make_blob(store_dir, key=K1):
    """A valid serialized block blob (via a scratch BlockStore)."""
    scratch = BlockStore(store_dir)
    scratch.put(key, {"x": np.arange(8, dtype=np.int16)})
    return scratch.backend.get_blob(key)


# ----------------------------------------------------------------------
# Backend protocol + local backend
# ----------------------------------------------------------------------


class TestLocalDirBackend:
    def test_roundtrip(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        assert isinstance(backend, StoreBackend)
        assert backend.get_blob(K1) is None
        assert not backend.contains(K1)
        backend.put_blob(K1, b"payload")
        assert backend.contains(K1)
        assert backend.get_blob(K1) == b"payload"
        assert backend.delete(K1)
        assert not backend.delete(K1)
        assert backend.get_blob(K1) is None

    def test_put_leaves_no_tmp_files(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        backend.put_blob(K1, b"x" * 100)
        leftovers = [
            p
            for sub in tmp_path.iterdir() if sub.is_dir()
            for p in sub.iterdir() if p.name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_validate_key_rejects_traversal(self):
        for bad in ("", "abc", "../" + "a" * 61, "A" * 64, K1 + "x"):
            with pytest.raises(CacheError):
                validate_key(bad)
        assert validate_key(K1) == K1


# ----------------------------------------------------------------------
# HTTP backend against a live server
# ----------------------------------------------------------------------


class TestHTTPBackend:
    def test_roundtrip_and_batch_contains(self, tmp_path, server):
        blob = _make_blob(tmp_path / "scratch")
        backend = HTTPBackend(server.url)
        assert backend.ping()
        assert backend.get_blob(K1) is None
        backend.put_blob(K1, blob)
        assert backend.contains(K1)
        assert backend.get_blob(K1) == blob
        present = contains_many(backend, [K1, K2])
        assert present == {K1: True, K2: False}
        stats = backend.stats()
        assert stats["n_blocks"] == 1
        assert stats["counters"]["puts"] == 1
        assert backend.delete(K1)
        assert not backend.contains(K1)

    def test_forked_child_abandons_inherited_connection(self, tmp_path, server):
        """Regression: a forked engine worker inherits the parent's
        keep-alive socket; speaking on it would interleave two
        processes' requests on one TCP stream (corrupted reads)."""
        blob = _make_blob(tmp_path / "scratch")
        backend = HTTPBackend(server.url)
        backend.put_blob(K1, blob)
        inherited = backend._local.conn
        assert inherited is not None
        backend._local.pid = -1  # what a forked child observes
        assert backend.get_blob(K1) == blob
        assert backend._local.conn is not inherited

        # And through a real fork: the child must answer correctly
        # without poisoning the parent's connection.
        ctx = multiprocessing.get_context("fork")
        queue = ctx.SimpleQueue()

        def child():
            queue.put(backend.get_blob(K1) == blob)

        proc = ctx.Process(target=child)
        proc.start()
        proc.join(timeout=30)
        assert proc.exitcode == 0 and queue.get() is True
        assert backend.get_blob(K1) == blob  # parent connection intact

    def test_server_rejects_damaged_put(self, tmp_path, server):
        blob = bytearray(_make_blob(tmp_path / "scratch"))
        blob[-1] ^= 0xFF  # flip a payload byte: digest no longer matches
        backend = HTTPBackend(server.url)
        with pytest.raises(RemoteCacheError, match="rejected"):
            backend.put_blob(K1, bytes(blob))
        assert not backend.contains(K1)
        assert backend.stats()["counters"]["rejected_puts"] == 1

    def test_server_rejects_misaddressed_put(self, tmp_path, server):
        blob = _make_blob(tmp_path / "scratch", key=K1)
        backend = HTTPBackend(server.url)
        with pytest.raises(RemoteCacheError):
            backend.put_blob(K2, blob)  # valid blob, wrong address
        assert not backend.contains(K2)

    def test_dead_server_raises_remote_cache_error(self):
        backend = HTTPBackend("http://127.0.0.1:1", timeout=0.2, retries=0)
        assert not backend.ping()
        with pytest.raises(RemoteCacheError):
            backend.get_blob(K1)


# ----------------------------------------------------------------------
# Tiered store semantics
# ----------------------------------------------------------------------


class TestTieredStore:
    def test_read_through_ingests_then_hits_locally(self, tmp_path, server):
        a = TieredStore(tmp_path / "a", remote=server.url, publish_mode="sync")
        a.put(K1, {"x": np.arange(8, dtype=np.int16)})
        assert a.counters.remote_puts == 1

        b = TieredStore(tmp_path / "b", remote=server.url)
        block = b.get(K1)
        assert block is not None
        np.testing.assert_array_equal(block.arrays["x"], np.arange(8))
        assert b.counters.remote_hits == 1
        assert b.counters.hits == 0
        assert b.counters.remote_bytes_read > 0
        # Now local: the second read never touches the wire.
        assert b.get(K1) is not None
        assert b.counters.hits == 1
        assert b.counters.remote_hits == 1

    def test_remote_ingest_verifies_digest(self, tmp_path, server):
        a = TieredStore(tmp_path / "a", remote=server.url, publish_mode="sync")
        a.put(K1, {"x": np.arange(8, dtype=np.int16)})
        # Corrupt the blob *behind* the server: the wire now delivers
        # damaged bytes with a valid HTTP 200 around them.
        path = server.store.path_for(K1)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))

        b = TieredStore(tmp_path / "b", remote=server.url)
        with pytest.warns(CacheIntegrityWarning, match="damaged remote block"):
            block = b.get(K1)
        assert block is None  # quarantined -> honest miss, shard re-acquires
        assert b.counters.integrity_failures == 1
        assert b.counters.misses == 1
        assert not b.backend.contains(K1)  # never ingested locally

    def test_write_behind_publishes_after_flush(self, tmp_path, server):
        store = TieredStore(tmp_path / "a", remote=server.url)
        store.put(K1, {"x": np.arange(4, dtype=np.int16)})
        store.flush()
        assert store.counters.remote_puts == 1
        assert HTTPBackend(server.url).contains(K1)
        store.close()

    def test_publish_skips_blocks_the_remote_already_has(self, tmp_path, server):
        a = TieredStore(tmp_path / "a", remote=server.url, publish_mode="sync")
        a.put(K1, {"x": np.arange(4, dtype=np.int16)})
        b = TieredStore(tmp_path / "b", remote=server.url, publish_mode="sync")
        b.put(K1, {"x": np.arange(4, dtype=np.int16)})
        assert b.counters.remote_publish_skipped == 1
        assert b.counters.remote_puts == 0

    def test_publish_racing_local_eviction_drops_cleanly(self, tmp_path, server):
        """A block evicted before its upload ran is dropped, not crashed
        on — the satellite race: publish_async vs the local LRU."""
        store = TieredStore(tmp_path / "a", remote=server.url)
        store.put(K2, {"x": np.arange(4, dtype=np.int16)})
        store.flush()
        # Evict K2's file out from under a fresh publish request.
        store.backend.delete(K2)
        store.publish_async([K3])  # K3 was never put locally at all
        store.flush()
        assert store.counters.remote_publish_dropped == 1
        store.close()

    def test_dead_remote_degrades_to_local_with_one_warning(self, tmp_path):
        store = TieredStore(
            tmp_path / "a", remote=HTTPBackend(
                "http://127.0.0.1:1", timeout=0.2, retries=0
            ),
        )
        with pytest.warns(RuntimeWarning, match="degraded to local-only"):
            assert store.get(K1) is None
        assert store.counters.remote_errors >= 1
        assert store.counters.misses == 1
        errors_so_far = store.counters.remote_errors
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            assert store.get(K1) is None  # warns once, counts every time
        assert store.counters.remote_errors == errors_so_far + 1
        # Local tier still fully functional.
        store.put(K2, {"x": np.arange(4, dtype=np.int16)})
        assert store.get(K2) is not None

    def test_tiers_of_classifies_all_three_states(self, tmp_path, server):
        a = TieredStore(tmp_path / "a", remote=server.url, publish_mode="sync")
        a.put(K1, {"x": np.arange(4, dtype=np.int16)})  # local + remote
        b = TieredStore(tmp_path / "b", remote=server.url)
        b.put(K2, {"x": np.arange(4, dtype=np.int16)})  # local only (b)
        tiers = b.tiers_of([K1, K2, K3])
        assert tiers == {K1: "remote", K2: "local", K3: None}
        assert b.tier_of(K1) == "remote"
        b.close()

    def test_fetch_is_counter_neutral(self, tmp_path, server):
        a = TieredStore(tmp_path / "a", remote=server.url, publish_mode="sync")
        a.put(K1, {"x": np.arange(4, dtype=np.int16)})
        b = TieredStore(tmp_path / "b", remote=server.url)
        outcome, nbytes = b.fetch(K1)
        assert outcome == "fetched" and nbytes > 0
        assert b.fetch(K1) == ("local", 0)
        assert b.fetch(K3) == ("absent", 0)
        assert b.counters.hits == b.counters.misses == 0
        assert b.counters.remote_hits == b.counters.remote_misses == 0
        # The eventual get is a plain local hit.
        assert b.get(K1) is not None
        assert b.counters.hits == 1

    def test_open_store_builds_tiered(self, tmp_path, server):
        store = open_store(str(tmp_path / "t"), remote=server.url)
        assert isinstance(store, TieredStore)
        assert store.root == tmp_path / "t"
        plain = open_store(str(tmp_path / "p"))
        assert isinstance(plain, BlockStore)
        assert not isinstance(plain, TieredStore)

    def test_for_worker_turns_publishing_off(self, tmp_path, server):
        store = TieredStore(tmp_path / "a", remote=server.url)
        view = store.for_worker()
        assert view.publish_mode == "off"
        view.put(K1, {"x": np.arange(4, dtype=np.int16)})
        view.flush()
        assert view.counters.remote_puts == 0
        assert not HTTPBackend(server.url).contains(K1)
        # The parent can still publish that locally-present block.
        store.publish_async([K1])
        store.flush()
        assert HTTPBackend(server.url).contains(K1)
        store.close()

    def test_provenance_recorded_on_put(self, tmp_path):
        store = BlockStore(tmp_path)
        store.put(K1, {"x": np.arange(4, dtype=np.int16)})
        block = store.get(K1)
        prov = block.meta["provenance"]
        assert prov["backend"].startswith("dir:")
        assert prov["schema"] == 1
        assert prov["host"]

    def test_verify_blob_checks_key_and_digest(self, tmp_path):
        from repro.traces.blockstore import read_blob_header

        blob = _make_blob(tmp_path / "scratch", key=K1)
        header = verify_blob(blob, key=K1)
        assert header["schema"] == 1
        with pytest.raises(ValueError):
            verify_blob(blob, key=K2)
        _, payload_start = read_blob_header(blob)
        damaged = bytearray(blob)
        damaged[payload_start] ^= 0xFF  # first *payload* byte, not padding
        with pytest.raises(ValueError):
            verify_blob(bytes(damaged), key=K1)


# ----------------------------------------------------------------------
# Scheduler primitives
# ----------------------------------------------------------------------


def _tasks(n, keyed=True):
    return [
        ShardTask(
            i,
            Shard(index=i, start=i * 10, stop=(i + 1) * 10),
            np.random.SeedSequence(i),
            key=f"{i:064x}" if keyed else None,
        )
        for i in range(n)
    ]


class TestSchedulerPrimitives:
    def test_validate_schedule(self):
        assert validate_schedule("stealing") == "stealing"
        assert validate_schedule("static") == "static"
        with pytest.raises(Exception):
            validate_schedule("round-robin")

    def test_flatten_keys(self):
        assert flatten_keys(None) == []
        assert flatten_keys(K1) == [K1]
        assert flatten_keys((K1, None, K2)) == [K1, K2]

    def test_classify_against_store_tiers(self, tmp_path, server):
        a = TieredStore(tmp_path / "a", remote=server.url, publish_mode="sync")
        tasks = _tasks(3)
        a.put(tasks[0].key, {"x": np.arange(4, dtype=np.int16)})  # local+remote
        b = TieredStore(tmp_path / "b", remote=server.url)
        b.put(tasks[1].key, {"x": np.arange(4, dtype=np.int16)})  # local only
        classes, tiers = classify_tasks(b, tasks)
        assert classes == ["remote", "local", "cold"]
        assert tiers[tasks[0].key] == "remote"
        b.close()

    def test_fanout_shard_class_is_the_cost_to_complete(self, tmp_path):
        store = BlockStore(tmp_path)
        store.put(K1, {"x": np.arange(4, dtype=np.int16)})
        tasks = [
            ShardTask(0, Shard(index=0, start=0, stop=10),
                      np.random.SeedSequence(0), key=(K1, K2)),
            ShardTask(1, Shard(index=1, start=10, stop=20),
                      np.random.SeedSequence(1), key=(K1, K1)),
        ]
        classes, _ = classify_tasks(store, tasks)
        assert classes == ["cold", "local"]  # any cold sub-block -> cold

    def test_steal_order_cold_first_remote_last(self):
        tasks = _tasks(4)
        classes = ["local", "cold", "remote", "cold"]
        assert steal_order(tasks, classes) == [1, 3, 0, 2]
        assert steal_order(tasks, None) == [0, 1, 2, 3]

    def test_static_groups_are_contiguous_and_balanced(self):
        assert static_groups(7, 3) == [[0, 1, 2], [3, 4], [5, 6]]
        assert static_groups(2, 8) == [[0], [1]]
        assert static_groups(3, 1) == [[0, 1, 2]]

    def test_serial_dispatch_preserves_plan_order(self):
        tasks = _tasks(5, keyed=False)
        seen = [
            task.position
            for task, _ in dispatch(
                tasks, workers=1, schedule="stealing",
                serial_body=lambda shard, seq, key: shard.index,
                pool_task=None, pool_initializer=None, pool_initargs=(),
            )
        ]
        assert seen == [0, 1, 2, 3, 4]

    def test_prefetcher_pulls_remote_keys(self, tmp_path, server):
        a = TieredStore(tmp_path / "a", remote=server.url, publish_mode="sync")
        keys = [f"{i:064x}" for i in range(3)]
        for k in keys:
            a.put(k, {"x": np.arange(4, dtype=np.int16)})
        b = TieredStore(tmp_path / "b", remote=server.url)
        prefetcher = RemotePrefetcher(b, keys + [K3], threads=2)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            snap = prefetcher.snapshot()
            if snap["prefetch_fetched"] + snap["prefetch_missed"] == 4:
                break
            time.sleep(0.01)
        prefetcher.stop()
        snap = prefetcher.snapshot()
        assert snap["prefetch_fetched"] == 3
        assert snap["prefetch_missed"] == 1
        assert snap["prefetch_bytes"] > 0
        for k in keys:
            assert b.backend.contains(k)
        b.close()


# ----------------------------------------------------------------------
# Engine integration: schedules, tiers, bit-identity
# ----------------------------------------------------------------------


class TestEngineSchedules:
    def test_bit_identical_across_schedules_and_tiers(
        self, acquisition, tmp_path, server
    ):
        reference = Engine(workers=1, shard_size=SHARD).collect(
            acquisition, N_TRACES, key=KEY, seed=3
        )
        # Host A fills the remote tier through a tiered store.
        a = Engine(
            workers=2, shard_size=SHARD,
            cache=open_store(str(tmp_path / "a"), remote=server.url),
        )
        cold = a.collect(acquisition, N_TRACES, key=KEY, seed=3)
        np.testing.assert_array_equal(reference.traces, cold.traces)
        assert a.cache_totals["misses"] == 3
        assert a.cache_totals["remote_puts"] == 3
        assert server.store.stats().n_blocks == 3

        # Host B: empty local tier, warm remote, both schedules.
        for schedule in ("stealing", "static"):
            b = Engine(
                workers=2, shard_size=SHARD, schedule=schedule,
                cache=open_store(
                    str(tmp_path / f"b-{schedule}"), remote=server.url
                ),
            )
            warm = b.collect(acquisition, N_TRACES, key=KEY, seed=3)
            np.testing.assert_array_equal(reference.traces, warm.traces)
            assert b.cache_totals["misses"] == 0
            # Every block crossed the wire at least once (prefetcher or
            # worker read-through; a racing pair may both pull a key).
            remote_served = (
                b.cache_totals["remote_hits"]
                + b.cache_totals["prefetch_fetched"]
            )
            assert remote_served >= 3
            # Each shard's *read* is exactly one hit: local (prefetch
            # won) or remote (read-through won).
            assert b.cache_totals["hits"] + b.cache_totals["remote_hits"] == 3

    def test_static_schedule_matches_stealing_serially(
        self, acquisition, tmp_path
    ):
        stealing = Engine(
            workers=1, shard_size=SHARD, cache=str(tmp_path / "s1"),
            schedule="stealing",
        ).collect(acquisition, N_TRACES, key=KEY, seed=3)
        static = Engine(
            workers=1, shard_size=SHARD, cache=str(tmp_path / "s2"),
            schedule="static",
        ).collect(acquisition, N_TRACES, key=KEY, seed=3)
        np.testing.assert_array_equal(stealing.traces, static.traces)

    def test_pool_static_bit_identical_warm_and_cold(
        self, acquisition, tmp_path
    ):
        reference = Engine(workers=1, shard_size=SHARD).collect(
            acquisition, N_TRACES, key=KEY, seed=3
        )
        engine = Engine(
            workers=2, shard_size=SHARD, cache=str(tmp_path),
            schedule="static",
        )
        cold = engine.collect(acquisition, N_TRACES, key=KEY, seed=3)
        warm = engine.collect(acquisition, N_TRACES, key=KEY, seed=3)
        np.testing.assert_array_equal(reference.traces, cold.traces)
        np.testing.assert_array_equal(reference.traces, warm.traces)
        assert engine.cache_totals["hits"] == 3
        assert engine.cache_totals["misses"] == 3

    def test_stream_attack_over_remote_tier(self, acquisition, tmp_path, server):
        from functools import partial

        from repro.attacks.cpa import CPAAttack

        n_samples = acquisition.default_n_samples()
        factory = partial(CPAAttack, n_samples)
        baseline = Engine(workers=1, shard_size=SHARD).stream_attack(
            acquisition, N_TRACES, key=KEY,
            consumer_factory=factory, seed=3,
        )
        a = Engine(
            workers=1, shard_size=SHARD,
            cache=open_store(str(tmp_path / "a"), remote=server.url),
        )
        a.stream_attack(
            acquisition, N_TRACES, key=KEY, consumer_factory=factory, seed=3
        )
        # Host B replays acquisition blocks from the remote tier (the
        # attack-state snapshots also published; either way the folded
        # correlations must be bit-identical).
        b = Engine(
            workers=2, shard_size=SHARD,
            cache=open_store(str(tmp_path / "b"), remote=server.url),
        )
        replay = b.stream_attack(
            acquisition, N_TRACES, key=KEY, consumer_factory=factory, seed=3
        )
        np.testing.assert_array_equal(
            baseline.correlations(), replay.correlations()
        )
        assert b.cache_totals["misses"] == 0

    def test_remote_counters_reach_run_metadata(
        self, acquisition, tmp_path, server, monkeypatch
    ):
        from repro.experiments import registry

        monkeypatch.setenv("REPRO_REMOTE_CACHE", server.url)
        config = registry.ExperimentConfig(
            scale="quick", workers=1,
            cache_dir=str(tmp_path / "runcache"),
            run_dir=str(tmp_path / "run"),
        )
        assert config.remote_cache == server.url
        result = registry.run("fig3", config)
        cache = result.metadata["cache"]
        assert "remote_hits" in cache and "remote_puts" in cache
        import json

        manifest = json.loads(
            (tmp_path / "run" / "manifest.json").read_text()
        )
        prov = manifest["cache_provenance"]
        assert prov["remote"].startswith("http:")
        assert prov["schedule"] == "stealing"
        assert prov["backend"].startswith("dir:")

    def test_schedule_is_validated(self, tmp_path):
        with pytest.raises(Exception):
            Engine(workers=2, schedule="round-robin")
