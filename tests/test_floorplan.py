"""Tests for the ASCII floorplan renderer."""

import pytest

from repro.core.leaky_dsp import LeakyDSP
from repro.errors import ConfigurationError
from repro.fpga.floorplan import Floorplan
from repro.fpga.placement import Pblock, Placer


class TestFloorplan:
    def test_renders_full_raster(self, basys3_device):
        fp = Floorplan(basys3_device, width=42, height=30)
        lines = fp.render().splitlines()
        assert len(lines) == 31  # raster + legend
        assert all(len(l) == 42 for l in lines[:30])

    def test_background_shows_dsp_columns(self, basys3_device):
        fp = Floorplan(basys3_device, width=basys3_device.width, height=30)
        body = fp.render()
        assert "D" in body
        assert "|" in body  # IO edges

    def test_region_boundaries_drawn(self, basys3_device):
        fp = Floorplan(basys3_device, width=42, height=30)
        assert "-" in fp.render()

    def test_pblock_outline_and_label(self, basys3_device):
        fp = Floorplan(basys3_device, width=42, height=30)
        fp.draw_pblock(Pblock("sensor", 21, 0, 41, 49), label="S1")
        body = fp.render()
        assert "#" in body
        assert "S1" in body

    def test_placement_markers(self, basys3_device):
        fp = Floorplan(basys3_device, width=42, height=30)
        sensor = LeakyDSP(device=basys3_device, seed=1)
        placement = sensor.place(Placer(basys3_device))
        fp.draw_placement(placement, glyph="*")
        assert "*" in fp.render()

    def test_marker(self, basys3_device):
        fp = Floorplan(basys3_device, width=42, height=30)
        fp.draw_marker(10, 25, glyph="A")
        assert "A" in fp.render()

    def test_marker_orientation(self, basys3_device):
        """Die y grows upward, so a bottom-of-die marker lands in the
        bottom rows of the rendering."""
        fp = Floorplan(basys3_device, width=42, height=30)
        fp.draw_marker(20, 0, glyph="Z")
        lines = fp.render().splitlines()
        assert "Z" in lines[29]

    def test_bad_glyph_rejected(self, basys3_device):
        fp = Floorplan(basys3_device)
        with pytest.raises(ConfigurationError):
            fp.draw_marker(0, 0, glyph="ab")

    def test_tiny_raster_rejected(self, basys3_device):
        with pytest.raises(ConfigurationError):
            Floorplan(basys3_device, width=2, height=2)

    def test_zu3eg_renders(self, zu3eg_device):
        fp = Floorplan(zu3eg_device, width=64, height=40)
        assert "zu3eg" in fp.render()
