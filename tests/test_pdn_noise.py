"""Tests for the voltage-noise models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.pdn.noise import NoiseModel


class TestNoiseModel:
    def test_quiet_is_silent(self):
        noise = NoiseModel.quiet().sample(100, rng=0)
        np.testing.assert_array_equal(noise, 0.0)

    def test_white_rms_close_to_spec(self):
        model = NoiseModel(white_rms=2e-3, drift_rms=0.0)
        samples = model.sample(200_000, rng=1)
        assert samples.std() == pytest.approx(2e-3, rel=0.02)

    def test_white_mean_near_zero(self):
        model = NoiseModel(white_rms=1e-3, drift_rms=0.0)
        assert abs(model.sample(100_000, rng=2).mean()) < 5e-5

    def test_deterministic_with_seed(self):
        model = NoiseModel()
        a = model.sample(100, rng=42)
        b = model.sample(100, rng=42)
        np.testing.assert_array_equal(a, b)

    def test_drift_is_correlated(self):
        model = NoiseModel(white_rms=0.0, drift_rms=1e-5)
        samples = model.sample(10_000, rng=3)
        # A random walk has strong lag-1 autocorrelation.
        x = samples - samples.mean()
        corr = (x[:-1] * x[1:]).mean() / x.var()
        assert corr > 0.9

    def test_drift_is_bounded(self):
        model = NoiseModel(white_rms=0.0, drift_rms=1e-5)
        n = 50_000
        samples = model.sample(n, rng=4)
        bound = 10 * 1e-5 * np.sqrt(n)
        assert np.max(np.abs(samples)) <= bound + 1e-12

    def test_bursts_only_droop(self):
        model = NoiseModel(
            white_rms=0.0, drift_rms=0.0, burst_rate=0.3, burst_amplitude=5e-3
        )
        samples = model.sample(10_000, rng=5)
        assert np.all(samples <= 0)
        hit_fraction = np.count_nonzero(samples) / samples.size
        assert hit_fraction == pytest.approx(0.3, abs=0.03)

    def test_negative_amplitudes_rejected(self):
        with pytest.raises(ConfigurationError):
            NoiseModel(white_rms=-1.0)

    def test_bad_burst_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            NoiseModel(burst_rate=1.5)
