"""Tests for the statistics helpers."""

import numpy as np
import pytest

from repro.analysis.stats import (
    linear_regression,
    pearson,
    snr,
    welch_t_test,
)
from repro.analysis.sweep import SweepResult, sweep
from repro.errors import ConfigurationError


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson(x, 3 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson(x, -2 * x) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        r = pearson(rng.normal(0, 1, 5000), rng.normal(0, 1, 5000))
        assert abs(r) < 0.05

    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        x, y = rng.normal(0, 1, 100), rng.normal(0, 1, 100)
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            pearson([1, 2], [1, 2, 3])

    def test_constant_rejected(self):
        with pytest.raises(ConfigurationError):
            pearson([1, 1, 1], [1, 2, 3])


class TestRegression:
    def test_recovers_line(self):
        x = np.linspace(0, 8, 9)
        fit = linear_regression(x, -3.45 * x + 40)
        assert fit.slope == pytest.approx(-3.45)
        assert fit.intercept == pytest.approx(40)
        assert fit.r_value == pytest.approx(-1.0)

    def test_r_squared(self):
        x = np.arange(10.0)
        fit = linear_regression(x, 2 * x)
        assert fit.r_squared == pytest.approx(1.0)

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            linear_regression([1.0], [2.0])


class TestSnr:
    def test_known_ratio(self):
        means = [0.0, 2.0]  # var = 1.0
        variances = [0.5, 0.5]
        assert snr(means, variances) == pytest.approx(2.0)

    def test_zero_noise_rejected(self):
        with pytest.raises(ConfigurationError):
            snr([0, 1], [0.0])

    def test_one_class_rejected(self):
        with pytest.raises(ConfigurationError):
            snr([1.0], [0.5])


class TestWelch:
    def test_identical_samples_t_zero(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, 500)
        t, dof = welch_t_test(a, a + 0.0)
        assert t == pytest.approx(0.0)
        assert dof > 100

    def test_separated_samples_large_t(self):
        rng = np.random.default_rng(3)
        a = rng.normal(0, 1, 500)
        b = rng.normal(5, 1, 500)
        t, _dof = welch_t_test(a, b)
        assert abs(t) > 50

    def test_sign_convention(self):
        a = np.array([10.0, 10.1, 9.9])
        b = np.array([1.0, 1.1, 0.9])
        t, _ = welch_t_test(a, b)
        assert t > 0

    def test_degenerate_rejected(self):
        with pytest.raises(ConfigurationError):
            welch_t_test([1.0], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            welch_t_test([1.0, 1.0], [2.0, 2.0])


class TestSweep:
    def test_collects_outputs(self):
        result = sweep("n", [1, 2, 3], lambda n: n * n)
        assert result.outputs == [1, 4, 9]
        assert result.parameter == "n"

    def test_rows(self):
        rows = sweep("x", [5], lambda x: "out").as_rows()
        assert rows == [{"x": 5, "output": "out"}]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep("x", [], lambda x: x)
