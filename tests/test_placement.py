"""Tests for Pblocks, the greedy placer, capacity packing and
multi-tenant occupancy sharing."""

import pytest

from repro.errors import PlacementError
from repro.fpga.device import SiteType
from repro.fpga.netlist import Netlist
from repro.fpga.placement import (
    Pblock,
    Placement,
    Placer,
    SLICE_CAPACITY,
    site_type_for_cell,
)
from repro.fpga.primitives import CARRY4, DSP48E1, FDRE, IDELAYE2, LUT


def _netlist_of(*primitives) -> Netlist:
    nl = Netlist("t")
    for p in primitives:
        nl.add_cell(p)
    return nl


class TestPblock:
    def test_from_region(self, basys3_device):
        region = basys3_device.region_by_name("X0Y0")
        pb = Pblock.from_region(region)
        assert (pb.x0, pb.y0, pb.x1, pb.y1) == (
            region.x0, region.y0, region.x1, region.y1,
        )

    def test_whole_device(self, basys3_device):
        pb = Pblock.whole_device(basys3_device)
        assert pb.x1 == basys3_device.width - 1

    def test_contains(self, basys3_device):
        pb = Pblock("p", 0, 0, 10, 10)
        inside = basys3_device.site("SLICE_X0Y5")
        assert pb.contains(inside)

    def test_degenerate_rejected(self):
        with pytest.raises(PlacementError):
            Pblock("p", 5, 5, 4, 5)

    def test_center(self):
        assert Pblock("p", 0, 0, 10, 20).center == (5.0, 10.0)


class TestSiteTypeMapping:
    def test_dsp(self):
        nl = _netlist_of(DSP48E1.leakydsp_config("d"))
        assert site_type_for_cell(nl.cells["d"]) is SiteType.DSP

    def test_slice_primitives(self):
        nl = _netlist_of(LUT.inverter("l"), FDRE("f"), CARRY4("c"))
        for name in ("l", "f", "c"):
            assert site_type_for_cell(nl.cells[name]) is SiteType.SLICE

    def test_idelay(self):
        nl = _netlist_of(IDELAYE2("i"))
        assert site_type_for_cell(nl.cells["i"]) is SiteType.IDELAY


class TestPlacer:
    def test_places_all_cells(self, placer):
        nl = _netlist_of(*(LUT.inverter(f"l{i}") for i in range(10)))
        placement = placer.place(nl)
        assert len(placement) == 10

    def test_respects_pblock(self, placer, basys3_device):
        pb = Pblock("p", 0, 0, 12, 20)
        nl = _netlist_of(*(LUT.inverter(f"l{i}") for i in range(20)))
        placement = placer.place(nl, pblock=pb)
        for cell in nl.cells:
            site = placement.site_of(cell)
            assert pb.contains(site)

    def test_packs_luts_to_slice_capacity(self, placer):
        n = SLICE_CAPACITY["LUT"] * 3
        nl = _netlist_of(*(LUT.inverter(f"l{i}") for i in range(n)))
        placement = placer.place(nl)
        used_sites = {placement.site_of(c).name for c in nl.cells}
        assert len(used_sites) == 3

    def test_luts_and_ffs_share_slices(self, placer):
        nl = _netlist_of(
            *(LUT.inverter(f"l{i}") for i in range(4)),
            *(FDRE(f"f{i}") for i in range(8)),
        )
        placement = placer.place(nl)
        used = {placement.site_of(c).name for c in nl.cells}
        assert len(used) == 1  # 4 LUT + 8 FF fit one slice

    def test_one_dsp_per_site(self, placer):
        nl = _netlist_of(
            DSP48E1.leakydsp_config("d0"), DSP48E1.leakydsp_config("d1")
        )
        placement = placer.place(nl)
        assert placement.site_of("d0").name != placement.site_of("d1").name

    def test_dsp_only_on_dsp_sites(self, placer):
        nl = _netlist_of(DSP48E1.leakydsp_config("d"))
        placement = placer.place(nl)
        assert placement.site_of("d").site_type is SiteType.DSP

    def test_nearest_to_anchor(self, placer, basys3_device):
        nl = _netlist_of(LUT.inverter("l"))
        placement = placer.place(nl, anchor=(1.0, 1.0))
        site = placement.site_of("l")
        assert site.x <= 5 and site.y <= 5

    def test_overfull_pblock_raises(self, placer):
        pb = Pblock("tiny", 1, 0, 1, 0)  # one slice column tile
        nl = _netlist_of(*(LUT.inverter(f"l{i}") for i in range(5)))
        with pytest.raises(PlacementError):
            placer.place(nl, pblock=pb)

    def test_no_dsp_site_in_pblock_raises(self, placer):
        pb = Pblock("no_dsp", 1, 0, 3, 10)
        nl = _netlist_of(DSP48E1.leakydsp_config("d"))
        with pytest.raises(PlacementError):
            placer.place(nl, pblock=pb)

    def test_occupancy_shared_across_calls(self, placer):
        nl1 = _netlist_of(DSP48E1.leakydsp_config("a"))
        nl2 = Netlist("t2")
        nl2.add_cell(DSP48E1.leakydsp_config("b"))
        p1 = placer.place(nl1, anchor=(8, 0))
        p2 = placer.place(nl2, anchor=(8, 0))
        assert p1.site_of("a").name != p2.site_of("b").name

    def test_exhausting_dsps_raises(self, placer, basys3_device):
        n = basys3_device.num_dsps
        nl = _netlist_of(*(DSP48E1.leakydsp_config(f"d{i}") for i in range(n)))
        placer.place(nl)
        extra = Netlist("extra")
        extra.add_cell(DSP48E1.leakydsp_config("one_more"))
        with pytest.raises(PlacementError):
            placer.place(extra)


class TestPlacement:
    def test_unplaced_cell_raises(self, basys3_device):
        placement = Placement(basys3_device)
        with pytest.raises(PlacementError):
            placement.site_of("ghost")

    def test_centroid(self, placer):
        nl = _netlist_of(*(LUT.inverter(f"l{i}") for i in range(8)))
        placement = placer.place(nl, anchor=(20, 70))
        cx, cy = placement.centroid()
        assert abs(cx - 20) < 5 and abs(cy - 70) < 5

    def test_empty_centroid_raises(self, basys3_device):
        with pytest.raises(PlacementError):
            Placement(basys3_device).centroid()

    def test_cells_at(self, placer):
        nl = _netlist_of(LUT.inverter("l0"), LUT.inverter("l1"))
        placement = placer.place(nl)
        site = placement.site_of("l0")
        assert set(placement.cells_at(site)) >= {"l0"}
