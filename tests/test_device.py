"""Tests for the FPGA device grid models."""

import pytest

from repro.errors import ConfigurationError
from repro.fpga.device import (
    DeviceModel,
    FFS_PER_SLICE,
    LUTS_PER_SLICE,
    Site,
    SiteType,
    xc7a35t,
    zu3eg,
)


class TestXc7a35t:
    def test_dsp_count_matches_part(self, basys3_device):
        assert basys3_device.num_dsps == 90

    def test_slice_count_approximates_part(self, basys3_device):
        # Real XC7A35T: 5,200 slices.
        assert abs(basys3_device.num_slices - 5200) < 300

    def test_lut_and_ff_ratios(self, basys3_device):
        assert basys3_device.num_luts == basys3_device.num_slices * LUTS_PER_SLICE
        assert basys3_device.num_ffs == basys3_device.num_slices * FFS_PER_SLICE

    def test_six_clock_regions(self, basys3_device):
        regions = basys3_device.clock_regions
        assert len(regions) == 6
        assert {r.name for r in regions} == {
            "X0Y0", "X1Y0", "X0Y1", "X1Y1", "X0Y2", "X1Y2",
        }

    def test_dsp_family(self, basys3_device):
        assert basys3_device.dsp_family == "DSP48E1"
        assert basys3_device.idelay_family == "IDELAYE2"

    def test_regions_tile_the_die(self, basys3_device):
        total = 0
        for region in basys3_device.clock_regions:
            total += (region.x1 - region.x0 + 1) * (region.y1 - region.y0 + 1)
        assert total == basys3_device.width * basys3_device.height


class TestZu3eg:
    def test_dsp_count_matches_part(self, zu3eg_device):
        assert zu3eg_device.num_dsps == 360

    def test_eight_clock_regions(self, zu3eg_device):
        assert len(zu3eg_device.clock_regions) == 8

    def test_ultrascale_families(self, zu3eg_device):
        assert zu3eg_device.dsp_family == "DSP48E2"
        assert zu3eg_device.idelay_family == "IDELAYE3"

    def test_larger_than_artix(self, basys3_device, zu3eg_device):
        assert zu3eg_device.num_slices > basys3_device.num_slices


class TestRegions:
    def test_region_of_maps_coordinates(self, basys3_device):
        assert basys3_device.region_of(0, 0).name == "X0Y0"
        assert basys3_device.region_of(41, 149).name == "X1Y2"
        assert basys3_device.region_of(21, 50).name == "X1Y1"

    def test_region_of_outside_raises(self, basys3_device):
        with pytest.raises(ConfigurationError):
            basys3_device.region_of(999, 0)

    def test_region_by_name(self, basys3_device):
        region = basys3_device.region_by_name("X1Y1")
        assert region.col == 1 and region.row == 1

    def test_region_by_unknown_name_raises(self, basys3_device):
        with pytest.raises(ConfigurationError):
            basys3_device.region_by_name("X9Y9")

    def test_region_contains_and_center(self, basys3_device):
        region = basys3_device.region_by_name("X0Y0")
        cx, cy = region.center
        assert region.contains(int(cx), int(cy))
        assert not region.contains(region.x1 + 1, region.y0)


class TestSites:
    def test_site_lookup_by_name(self, basys3_device):
        site = basys3_device.site("DSP48_X0Y0")
        assert site.site_type is SiteType.DSP

    def test_unknown_site_raises(self, basys3_device):
        with pytest.raises(ConfigurationError):
            basys3_device.site("DSP48_X9Y999")

    def test_dsp_sites_in_columns(self, basys3_device):
        xs = {s.x for s in basys3_device.sites_of_type(SiteType.DSP)}
        assert xs == set(basys3_device.dsp_columns)

    def test_slice_sites_not_in_special_columns(self, basys3_device):
        special = set(basys3_device.dsp_columns) | set(
            basys3_device.bram_columns
        ) | set(basys3_device.io_columns)
        for site in basys3_device.sites_of_type(SiteType.SLICE):
            assert site.x not in special

    def test_idelay_sites_at_edges(self, basys3_device):
        xs = {s.x for s in basys3_device.sites_of_type(SiteType.IDELAY)}
        assert xs == {0, basys3_device.width - 1}

    def test_site_names_unique(self, basys3_device):
        names = [s.name for s in basys3_device.iter_sites()]
        assert len(names) == len(set(names))

    def test_site_position_property(self):
        site = Site("S", SiteType.SLICE, 3, 4)
        assert site.position == (3, 4)

    def test_contains(self, basys3_device):
        assert basys3_device.contains(0, 0)
        assert not basys3_device.contains(-1, 0)
        assert not basys3_device.contains(0, basys3_device.height)

    def test_center(self, basys3_device):
        cx, cy = basys3_device.center
        assert 0 < cx < basys3_device.width
        assert 0 < cy < basys3_device.height


class TestDeviceValidation:
    def test_uneven_region_split_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceModel("bad", 41, 150, 2, 3, dsp_columns=(8,), dsp_row_pitch=5)

    def test_negative_extent_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceModel("bad", 0, 150, 2, 3, dsp_columns=(), dsp_row_pitch=5)

    def test_dsp_column_outside_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceModel("bad", 42, 150, 2, 3, dsp_columns=(99,), dsp_row_pitch=5)

    def test_unknown_dsp_family_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceModel(
                "bad", 42, 150, 2, 3, dsp_columns=(8,), dsp_row_pitch=5,
                dsp_family="DSP99",
            )

    def test_unknown_idelay_family_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceModel(
                "bad", 42, 150, 2, 3, dsp_columns=(8,), dsp_row_pitch=5,
                idelay_family="IDELAY9",
            )
