"""Tests for the ring-oscillator counter sensor."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sensors.ro import RingOscillatorSensor


@pytest.fixture(scope="module")
def ro(basys3_device):
    return RingOscillatorSensor(device=basys3_device)


class TestConstruction:
    def test_even_loop_rejected(self, basys3_device):
        with pytest.raises(ConfigurationError):
            RingOscillatorSensor(device=basys3_device, n_inverters=2)

    def test_nonpositive_window_rejected(self, basys3_device):
        with pytest.raises(ConfigurationError):
            RingOscillatorSensor(device=basys3_device, window=0.0)

    def test_contains_combinational_loop(self, ro):
        loops = ro.netlist().combinational_loops()
        assert len(loops) >= 1

    def test_longer_loop_is_slower(self, basys3_device):
        short = RingOscillatorSensor(device=basys3_device, n_inverters=1)
        long = RingOscillatorSensor(device=basys3_device, n_inverters=5)
        assert long.frequency(1.0)[0] < short.frequency(1.0)[0]


class TestBehaviour:
    def test_frequency_drops_with_droop(self, ro):
        f = ro.frequency(np.array([1.0, 0.95]))
        assert f[0] > f[1]

    def test_expected_readout_counts_window(self, ro):
        f = ro.frequency(1.0)[0]
        r = ro.expected_readout(np.array([1.0]))[0]
        assert r == pytest.approx(f * ro.window, rel=1e-9)

    def test_counter_saturates(self, basys3_device):
        tiny = RingOscillatorSensor(
            device=basys3_device, counter_bits=4, window=1e-3
        )
        r = tiny.expected_readout(np.array([1.0]))[0]
        assert r == 15

    def test_sample_quantization(self, ro, rng):
        samples = ro.sample_readouts(np.full(500, 1.0), rng=rng)
        expected = ro.expected_readout(np.array([1.0]))[0]
        assert np.all(np.abs(samples - expected) <= 1.0)

    def test_bit_probabilities_not_meaningful(self, ro):
        with pytest.raises(NotImplementedError):
            ro.bit_probabilities(np.array([1.0]))

    def test_readout_std_is_quantization(self, ro):
        assert ro.readout_std(np.array([1.0]))[0] == pytest.approx(1 / np.sqrt(12))

    def test_scalar_shape_passthrough(self, ro, rng):
        r = ro.sample_readouts(1.0, rng=rng)
        assert r.shape == ()
