"""Tests for the shared VoltageSensor machinery: moment tables, normal
vs exact sampling, shape handling."""

import numpy as np
import pytest

from repro.core.leaky_dsp import LeakyDSP
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def sensor(basys3_device):
    s = LeakyDSP(device=basys3_device, seed=4)
    s.set_taps(20, 0)  # centre the capture phase
    return s


class TestMoments:
    def test_expected_matches_probability_sum(self, sensor):
        v = np.array([0.99])
        p = sensor.bit_probabilities(v)
        assert sensor.expected_readout(v)[0] == pytest.approx(p.sum())

    def test_std_is_poisson_binomial(self, sensor):
        v = np.array([0.99])
        p = sensor.bit_probabilities(v)[0]
        assert sensor.readout_std(v)[0] == pytest.approx(
            np.sqrt((p * (1 - p)).sum())
        )

    def test_table_interpolation_matches_exact_mean(self, sensor):
        grid, mu_t, _sigma = sensor._moments_table()
        v = np.array([0.985])
        exact = sensor.expected_readout(v)[0]
        interp = np.interp(v, grid, mu_t)[0]
        assert interp == pytest.approx(exact, abs=0.05)


class TestSampling:
    def test_exact_and_normal_agree_in_mean(self, sensor):
        v = np.full(30000, 0.99)
        exact = sensor.sample_readouts(v, rng=0, method="exact").mean()
        normal = sensor.sample_readouts(v, rng=1, method="normal").mean()
        assert exact == pytest.approx(normal, abs=0.25)

    def test_exact_and_normal_agree_in_std(self, sensor):
        # Compare around a noisy operating point where quantization
        # broadens both samplers the same way.
        rng = np.random.default_rng(2)
        v = 0.99 + rng.normal(0, 1e-3, 30000)
        exact = sensor.sample_readouts(v, rng=0, method="exact").std()
        normal = sensor.sample_readouts(v, rng=1, method="normal").std()
        assert exact == pytest.approx(normal, rel=0.25)

    def test_auto_switches_to_normal_for_bulk(self, sensor):
        v = np.full(25000, 0.99)
        out = sensor.sample_readouts(v, rng=0, method="auto")
        assert out.shape == v.shape  # just exercises the bulk path

    def test_normal_clips_to_width(self, sensor):
        v = np.full(1000, 1.05)  # far overvolt: all bits settle
        out = sensor.sample_readouts(v, rng=0, method="normal")
        assert np.all(out <= sensor.output_width)

    def test_matrix_shape_preserved(self, sensor):
        v = np.full((7, 9), 0.99)
        out = sensor.sample_readouts(v, rng=0, method="exact")
        assert out.shape == (7, 9)

    def test_unknown_method_rejected(self, sensor):
        with pytest.raises(ConfigurationError):
            sensor.sample_readouts(np.array([1.0]), method="bogus")

    def test_deterministic_given_rng(self, sensor):
        v = np.full(100, 0.99)
        a = sensor.sample_readouts(v, rng=9, method="exact")
        b = sensor.sample_readouts(v, rng=9, method="exact")
        np.testing.assert_array_equal(a, b)

    def test_enum_member_accepted(self, sensor):
        from repro.core.sensor import SamplingMethod

        v = np.full(100, 0.99)
        a = sensor.sample_readouts(v, rng=9, method=SamplingMethod.EXACT)
        b = sensor.sample_readouts(v, rng=9, method="exact")
        np.testing.assert_array_equal(a, b)

    def test_rng_and_method_are_keyword_only(self, sensor):
        with pytest.raises(TypeError):
            sensor.sample_readouts(np.array([1.0]), 0)

    def test_resolve_sampling_method(self):
        from repro.core.sensor import SamplingMethod, resolve_sampling_method

        assert resolve_sampling_method("normal") is SamplingMethod.NORMAL
        assert resolve_sampling_method(SamplingMethod.AUTO) is SamplingMethod.AUTO
        with pytest.raises(ConfigurationError):
            resolve_sampling_method("bogus")

    def test_table_invalidated_on_tap_change(self, basys3_device):
        s = LeakyDSP(device=basys3_device, seed=4)
        s.set_taps(20, 0)
        mu_before = s.sample_readouts(np.full(5000, 1.0), rng=0, method="normal").mean()
        s.set_taps(0, 10)
        mu_after = s.sample_readouts(np.full(5000, 1.0), rng=0, method="normal").mean()
        assert abs(mu_before - mu_after) > 1.0


class TestValidation:
    def test_zero_width_rejected(self, basys3_device):
        from repro.core.sensor import VoltageSensor

        class Bad(VoltageSensor):
            def netlist(self):
                raise NotImplementedError

            def bit_probabilities(self, v):
                raise NotImplementedError

        with pytest.raises(ConfigurationError):
            Bad("bad", output_width=0)
