"""Tests for the parallel acquisition runtime.

The load-bearing property: for a fixed seed and shard size, the engine's
output is bit-identical at any worker count, and ``Engine(workers=1)``
is the serial reference path.
"""

from functools import partial

import numpy as np
import pytest

from repro.attacks.cpa import CPAAttack
from repro.attacks.metrics import rank_curve, streamed_rank_curve
from repro.core.calibration import calibrate
from repro.core.leaky_dsp import LeakyDSP
from repro.errors import AcquisitionError, ConfigurationError
from repro.fpga.placement import Pblock, Placer
from repro.pdn.coupling import CouplingModel
from repro.runtime import Engine, plan_shards, root_sequence, spawn_shard_sequences
from repro.timing.sampling import ClockSpec
from repro.traces.acquisition import (
    AESTraceAcquisition,
    characterize_readouts,
)
from repro.victims.aes import AESHardwareModel

KEY = bytes(range(16))


@pytest.fixture(scope="module")
def acquisition(basys3_device):
    coupling = CouplingModel(basys3_device)
    placer = Placer(basys3_device)
    sensor = LeakyDSP(device=basys3_device, seed=7)
    sensor.place(
        placer, pblock=Pblock.from_region(basys3_device.region_by_name("X1Y0"))
    )
    calibrate(sensor, rng=0)
    hw = AESHardwareModel(ClockSpec(20e6), ClockSpec(300e6))
    return AESTraceAcquisition(sensor, coupling, hw, (10.0, 25.0))


@pytest.fixture(scope="module")
def characterization():
    from repro.experiments import common

    setup = common.Basys3Setup.create()
    virus = common.make_virus(setup, n_instances=800, n_groups=8)
    sensor = common.make_leakydsp(
        setup, common.region_pblock(setup.device, 2), seed=9
    )
    return sensor, setup.coupling, virus


class TestShardPlanning:
    def test_covers_range_without_overlap(self):
        shards = plan_shards(1000, 128)
        assert shards[0].start == 0
        assert shards[-1].stop == 1000
        for a, b in zip(shards, shards[1:]):
            assert a.stop == b.start
        assert sum(s.size for s in shards) == 1000

    def test_single_shard(self):
        shards = plan_shards(10, 128)
        assert len(shards) == 1
        assert shards[0].slice == slice(0, 10)

    def test_plan_independent_of_workers(self):
        # The plan is a pure function of (n_items, shard_size).
        assert plan_shards(999, 100) == plan_shards(999, 100)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            plan_shards(0, 128)
        with pytest.raises(ConfigurationError):
            plan_shards(10, 0)

    def test_spawned_sequences_are_distinct(self):
        seqs = spawn_shard_sequences(3, 4)
        states = [tuple(s.generate_state(2)) for s in seqs]
        assert len(set(states)) == 4

    def test_root_sequence_rejects_generators(self):
        with pytest.raises(ConfigurationError):
            root_sequence(np.random.default_rng(0))

    def test_root_sequence_accepts_seed_sequence(self):
        seq = np.random.SeedSequence(5)
        assert root_sequence(seq) is seq


class TestEngineCollect:
    def test_identical_across_worker_counts(self, acquisition):
        reference = Engine(workers=1, shard_size=16).collect(
            acquisition, 100, key=KEY, seed=3
        )
        for workers in (2, 4):
            ts = Engine(workers=workers, shard_size=16).collect(
                acquisition, 100, key=KEY, seed=3
            )
            np.testing.assert_array_equal(ts.traces, reference.traces)
            np.testing.assert_array_equal(ts.plaintexts, reference.plaintexts)
            np.testing.assert_array_equal(ts.ciphertexts, reference.ciphertexts)
            np.testing.assert_array_equal(ts.key, reference.key)

    def test_serial_engine_matches_itself(self, acquisition):
        a = Engine(workers=1, shard_size=32).collect(acquisition, 50, key=KEY, seed=1)
        b = Engine(workers=1, shard_size=32).collect(acquisition, 50, key=KEY, seed=1)
        np.testing.assert_array_equal(a.traces, b.traces)

    def test_seed_changes_output(self, acquisition):
        a = Engine(workers=1, shard_size=32).collect(acquisition, 50, key=KEY, seed=1)
        b = Engine(workers=1, shard_size=32).collect(acquisition, 50, key=KEY, seed=2)
        assert not np.array_equal(a.plaintexts, b.plaintexts)

    def test_ciphertexts_are_real_aes(self, acquisition):
        from repro.victims.aes import AES128

        ts = Engine(workers=1, shard_size=32).collect(acquisition, 10, key=KEY, seed=4)
        aes = AES128(KEY)
        expected = aes.encrypt_blocks(ts.plaintexts)
        np.testing.assert_array_equal(ts.ciphertexts, expected)

    def test_metadata_and_metrics(self, acquisition):
        engine = Engine(workers=1, shard_size=16)
        ts = engine.collect(acquisition, 40, key=KEY, seed=0)
        assert ts.metadata["sensor_type"] == "LeakyDSP"
        m = engine.last_metrics
        assert m.kind == "collect"
        assert m.n_items == 40
        assert m.n_shards == 3
        assert sum(s.n_items for s in m.shards) == 40
        assert m.items_per_second > 0
        stages = m.stage_totals()
        assert {"aes", "pdn", "sensor"} <= set(stages)

    def test_progress_events(self, acquisition):
        events = []
        engine = Engine(workers=1, shard_size=16, progress=events.append)
        engine.collect(acquisition, 40, key=KEY, seed=0)
        assert [e.done for e in events] == [16, 32, 40]
        assert all(e.total == 40 for e in events)
        assert all(e.kind == "collect" for e in events)

    def test_generator_seed_rejected(self, acquisition):
        with pytest.raises(ConfigurationError):
            Engine(workers=1).collect(
                acquisition, 10, key=KEY, seed=np.random.default_rng(0)
            )

    def test_bad_engine_params_rejected(self):
        with pytest.raises(ConfigurationError):
            Engine(workers=0)
        with pytest.raises(ConfigurationError):
            Engine(shard_size=0)


class TestEngineCharacterize:
    def test_identical_across_worker_counts(self, characterization):
        sensor, coupling, virus = characterization
        reference = Engine(workers=1, shard_size=64).characterize(
            sensor, coupling, virus, 4, 300, seed=11
        )
        for workers in (2, 3):
            out = Engine(workers=workers, shard_size=64).characterize(
                sensor, coupling, virus, 4, 300, seed=11
            )
            np.testing.assert_array_equal(out, reference)

    def test_matches_noise_free_statistics(self, characterization):
        # Engine readouts come from the same sensor model as the legacy
        # path: their mean must sit near the noise-free readout.
        sensor, coupling, virus = characterization
        engine_out = Engine(workers=1).characterize(
            sensor, coupling, virus, 8, 600, seed=0
        )
        legacy_out = characterize_readouts(
            sensor, coupling, virus, 8, 600, rng=np.random.default_rng(0)
        )
        assert abs(engine_out.mean() - legacy_out.mean()) < 2.0

    def test_progress_and_metrics(self, characterization):
        sensor, coupling, virus = characterization
        events = []
        engine = Engine(workers=1, shard_size=100, progress=events.append)
        engine.characterize(sensor, coupling, virus, 2, 250, seed=5)
        assert [e.done for e in events] == [100, 200, 250]
        assert engine.last_metrics.kind == "characterize"
        assert engine.last_metrics.n_items == 250


class TestEngineStreamAttack:
    """stream_attack must reproduce the serial batch CPA bit-for-bit:
    same seed => same traces => (exact integer sums) => identical
    correlations, at any worker count and chunk size."""

    @pytest.fixture(scope="class")
    def batch(self, acquisition):
        ts = Engine(workers=1, shard_size=16).collect(
            acquisition, 120, key=KEY, seed=3
        )
        attack = CPAAttack(ts.n_samples)
        attack.add_traces(ts.traces, ts.ciphertexts)
        return ts, attack

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("chunk_size", [None, 7, 64])
    def test_streamed_cpa_is_bit_identical(
        self, acquisition, batch, workers, chunk_size
    ):
        ts, reference = batch
        engine = Engine(workers=workers, shard_size=16)
        attack = engine.stream_attack(
            acquisition,
            120,
            key=KEY,
            consumer_factory=partial(CPAAttack, ts.n_samples),
            seed=3,
            chunk_size=chunk_size,
        )
        assert attack.n_traces == reference.n_traces == 120
        np.testing.assert_array_equal(
            attack.correlations(), reference.correlations()
        )
        np.testing.assert_array_equal(
            attack.best_guesses(), reference.best_guesses()
        )

    @pytest.mark.parametrize("workers", [1, 2])
    def test_streamed_rank_curve_matches_batch(self, acquisition, batch, workers):
        ts, _ = batch
        checkpoints = [40, 80, 120]
        expected = rank_curve(ts, checkpoints)
        engine = Engine(workers=workers, shard_size=16)
        curve, attack = streamed_rank_curve(
            engine, acquisition, 120, key=KEY, checkpoints=checkpoints,
            seed=3, chunk_size=25,
        )
        assert attack.n_traces == 120
        got = [(p.n_traces, p.log2_lower, p.log2_upper, p.recovered)
               for p in curve.points]
        want = [(p.n_traces, p.log2_lower, p.log2_upper, p.recovered)
                for p in expected.points]
        assert got == want

    def test_checkpoints_see_exact_prefixes(self, acquisition, batch):
        ts, _ = batch
        seen = []

        def on_checkpoint(count, acc):
            seen.append((count, acc.n_traces, acc.peak_correlations().copy()))

        Engine(workers=1, shard_size=16).stream_attack(
            acquisition, 120, key=KEY,
            consumer_factory=partial(CPAAttack, ts.n_samples),
            seed=3, checkpoints=[24, 120], on_checkpoint=on_checkpoint,
        )
        assert [(c, n) for c, n, _ in seen] == [(24, 24), (120, 120)]
        for count, _, peaks in seen:
            prefix = CPAAttack(ts.n_samples)
            prefix.add_traces(ts.traces[:count], ts.ciphertexts[:count])
            np.testing.assert_array_equal(peaks, prefix.peak_correlations())

    def test_consumer_continues_accumulating(self, acquisition, batch):
        ts, reference = batch
        engine = Engine(workers=1, shard_size=16)
        factory = partial(CPAAttack, ts.n_samples)
        first = engine.stream_attack(
            acquisition, 120, key=KEY, consumer_factory=factory, seed=3
        )
        again = engine.stream_attack(
            acquisition, 40, key=KEY, consumer_factory=factory, seed=99,
            consumer=first,
        )
        assert again is first
        assert again.n_traces == 160

    def test_stream_metrics_and_progress(self, acquisition):
        events = []
        engine = Engine(workers=1, shard_size=16, progress=events.append)
        engine.stream_attack(
            acquisition, 40, key=KEY,
            consumer_factory=partial(CPAAttack, acquisition.default_n_samples()),
            seed=0,
        )
        assert [e.done for e in events] == [16, 32, 40]
        assert all(e.kind == "stream" for e in events)
        m = engine.last_metrics
        assert m.kind == "stream"
        assert m.n_items == 40
        assert sum(s.n_items for s in m.shards) == 40

    def test_rejects_bad_chunk_size(self, acquisition):
        factory = partial(CPAAttack, acquisition.default_n_samples())
        for bad in (0, -1, 2.5):
            with pytest.raises(ConfigurationError):
                Engine(workers=1).stream_attack(
                    acquisition, 20, key=KEY,
                    consumer_factory=factory, chunk_size=bad,
                )

    def test_rejects_bad_checkpoints(self, acquisition):
        factory = partial(CPAAttack, acquisition.default_n_samples())
        engine = Engine(workers=1, shard_size=16)
        with pytest.raises(ConfigurationError):
            engine.stream_attack(
                acquisition, 20, key=KEY, consumer_factory=factory,
                checkpoints=[10, 10, 20],
            )
        with pytest.raises(ConfigurationError):
            engine.stream_attack(
                acquisition, 20, key=KEY, consumer_factory=factory,
                checkpoints=[10, 40],
            )
        with pytest.raises(ConfigurationError):
            engine.stream_attack(
                acquisition, 20, key=KEY, consumer_factory=factory,
                checkpoints=[0, 10],
            )


class TestAcquisitionChunkValidation:
    @pytest.mark.parametrize("bad", [0, -1, 2.5, "64"])
    def test_collect_rejects_bad_chunk_size(self, acquisition, bad):
        # chunk_size=0 used to loop forever; now it is rejected up front.
        with pytest.raises(ConfigurationError):
            acquisition.collect(10, key=KEY, rng=0, chunk_size=bad)

    def test_collect_accepts_explicit_chunk_size(self, acquisition):
        a = acquisition.collect(10, key=KEY, rng=0, chunk_size=3)
        assert len(a) == 10


class TestActiveGroupsValidation:
    def test_float_integral_accepted(self, characterization):
        sensor, coupling, virus = characterization
        a = characterize_readouts(
            sensor, coupling, virus, 4.0, 50, rng=np.random.default_rng(1)
        )
        b = characterize_readouts(
            sensor, coupling, virus, 4, 50, rng=np.random.default_rng(1)
        )
        np.testing.assert_array_equal(a, b)

    def test_fractional_float_rejected(self, characterization):
        sensor, coupling, virus = characterization
        with pytest.raises(AcquisitionError):
            characterize_readouts(sensor, coupling, virus, 2.5, 50)

    def test_bool_rejected(self, characterization):
        sensor, coupling, virus = characterization
        with pytest.raises(AcquisitionError):
            characterize_readouts(sensor, coupling, virus, True, 50)

    def test_out_of_range_rejected(self, characterization):
        sensor, coupling, virus = characterization
        with pytest.raises(AcquisitionError):
            characterize_readouts(sensor, coupling, virus, virus.n_groups + 1, 50)
        with pytest.raises(AcquisitionError):
            characterize_readouts(sensor, coupling, virus, -1, 50)

    def test_numpy_integer_accepted(self, characterization):
        sensor, coupling, virus = characterization
        out = characterize_readouts(
            sensor, coupling, virus, np.int64(3), 50, rng=np.random.default_rng(2)
        )
        assert out.shape == (50,)
