"""Differential tests for the batched CPA accumulate engine.

The contract under test (see :mod:`repro.attacks.cpa`): the batched
stacked-GEMM engine and the per-byte reference engine accumulate the
**same exact sums**, so on integer-valued traces — the acquisition
regime — correlations, peak correlations, guesses and ranks are
bit-identical between engines for any chunking, merge order, sample
window, or dtype-narrowing decision inside the batched tile loop; and
state snapshots written by either engine restore into either engine.
"""

import numpy as np
import pytest

from repro.attacks.cpa import (
    CPAAttack,
    _BATCH_TILE_ROWS,
    hypothesis_table,
    hypothesis_table_gather,
)
from repro.errors import AttackError, ConfigurationError

S = 23
WINDOWS = [None, (0, S), (3, 17), (10, 11)]


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(42)
    traces = rng.integers(-2048, 2048, size=(700, S), dtype=np.int16)
    cts = rng.integers(0, 256, size=(700, 16), dtype=np.uint8)
    return traces, cts


def engines(window=None, **kwargs):
    return (
        CPAAttack(S, sample_window=window, accumulate="batched", **kwargs),
        CPAAttack(S, sample_window=window, accumulate="per-byte", **kwargs),
    )


class TestGatherTable:
    def test_matches_hypothesis_table(self):
        gather = hypothesis_table_gather()
        table = hypothesis_table()
        assert gather.shape == (65536, 256) and gather.dtype == np.uint8
        rng = np.random.default_rng(0)
        for _ in range(50):
            g, t, p = rng.integers(0, 256, 3)
            assert gather[t * 256 + p, g] == table[g, t, p]

    def test_cached_per_process(self):
        assert hypothesis_table_gather() is hypothesis_table_gather()


class TestBitIdentity:
    @pytest.mark.parametrize("window", WINDOWS)
    def test_all_windows_bit_identical(self, batch, window):
        traces, cts = batch
        a, b = engines(window)
        a.add_traces(traces, cts)
        b.add_traces(traces, cts)
        assert np.array_equal(a.correlations(), b.correlations())
        assert np.array_equal(a.peak_correlations(), b.peak_correlations())
        assert np.array_equal(a.best_guesses(), b.best_guesses())

    def test_chunking_invariant(self, batch):
        traces, cts = batch
        whole, _ = engines()
        whole.add_traces(traces, cts)
        for cuts in ([100], [1, 699], [250, 251, 400]):
            chunked = CPAAttack(S, accumulate="batched")
            for lo, hi in zip([0] + cuts, cuts + [len(traces)]):
                chunked.add_traces(traces[lo:hi], cts[lo:hi])
            assert np.array_equal(chunked.correlations(), whole.correlations())

    def test_merge_order_invariant(self, batch):
        traces, cts = batch
        whole, _ = engines()
        whole.add_traces(traces, cts)
        parts = []
        for lo, hi in ((0, 200), (200, 450), (450, 700)):
            part = CPAAttack(S, accumulate="batched")
            part.add_traces(traces[lo:hi], cts[lo:hi])
            parts.append(part)
        merged = parts[2].merge(parts[0]).merge(parts[1])
        assert np.array_equal(merged.correlations(), whole.correlations())

    def test_tile_boundary_crossing(self):
        # A chunk larger than the internal tile exercises the
        # multi-tile loop; identity must hold across the seam.
        rng = np.random.default_rng(3)
        m = _BATCH_TILE_ROWS + 257
        traces = rng.integers(0, 1024, size=(m, S), dtype=np.int16)
        cts = rng.integers(0, 256, size=(m, 16), dtype=np.uint8)
        a, b = engines()
        a.add_traces(traces, cts)
        b.add_traces(traces, cts)
        assert np.array_equal(a.correlations(), b.correlations())

    def test_integral_float_traces_bit_identical(self, batch):
        traces, cts = batch
        a, b = engines()
        # Integer-valued but float-typed: the f32 GEMM guard must see a
        # non-integer dtype and take the float64 path — still exact.
        a.add_traces(traces.astype(np.float64), cts)
        b.add_traces(traces.astype(np.float64), cts)
        assert np.array_equal(a.correlations(), b.correlations())

    def test_large_readouts_force_f64_and_stay_identical(self):
        # 8 * rows * max|y| >= 2**24 defeats the float32 exactness
        # bound; the engine must fall back to the float64 GEMM.
        rng = np.random.default_rng(9)
        traces = rng.integers(-(2**22), 2**22, size=(300, S), dtype=np.int64)
        cts = rng.integers(0, 256, size=(300, 16), dtype=np.uint8)
        a, b = engines()
        a.add_traces(traces, cts)
        b.add_traces(traces, cts)
        assert np.array_equal(a.correlations(), b.correlations())

    def test_non_integer_floats_agree_to_1e_10(self, batch):
        traces, cts = batch
        noisy = traces + 0.375  # exact in float64, not integral
        a, b = engines()
        a.add_traces(noisy, cts)
        b.add_traces(noisy, cts)
        np.testing.assert_allclose(
            a.correlations(), b.correlations(), rtol=0, atol=1e-10
        )

    def test_recovers_planted_key_like_reference(self):
        # Synthetic leakage: the hypothesis of the true key leaks into
        # one sample.  Both engines must find the same (correct) key.
        from repro.victims.aes.core import SHIFT_ROWS_IDX
        from repro.victims.aes.key_schedule import expand_key
        from repro.victims.aes.sbox import HW8, INV_SBOX

        rng = np.random.default_rng(5)
        key10 = expand_key(bytes(range(16)))[10]
        m = 900
        cts = rng.integers(0, 256, size=(m, 16), dtype=np.uint8)
        traces = rng.integers(0, 64, size=(m, S), dtype=np.int16)
        leak = np.zeros(m, dtype=np.int64)
        for j in range(16):
            pred = INV_SBOX[cts[:, j] ^ key10[j]]
            leak += HW8[pred ^ cts[:, SHIFT_ROWS_IDX[j]]]
        traces[:, 7] += (4 * leak).astype(np.int16)
        a, b = engines()
        a.add_traces(traces, cts)
        b.add_traces(traces, cts)
        assert np.array_equal(a.best_guesses(), key10)
        assert np.array_equal(b.best_guesses(), key10)
        assert np.array_equal(
            a.byte_ranks(key10), np.zeros(16, dtype=np.int64)
        )


class TestStateMigration:
    @pytest.mark.parametrize("window", [None, (3, 17)])
    def test_batched_dump_into_per_byte(self, batch, window):
        traces, cts = batch
        a, b = engines(window)
        a.add_traces(traces, cts)
        restored = CPAAttack(
            S, sample_window=window, accumulate="per-byte"
        ).load_state_arrays(a.state_arrays())
        b.add_traces(traces, cts)
        assert np.array_equal(restored.correlations(), b.correlations())

    @pytest.mark.parametrize("window", [None, (3, 17)])
    def test_per_byte_dump_into_batched(self, batch, window):
        traces, cts = batch
        a, b = engines(window)
        b.add_traces(traces, cts)
        restored = CPAAttack(
            S, sample_window=window, accumulate="batched"
        ).load_state_arrays(b.state_arrays())
        a.add_traces(traces, cts)
        assert np.array_equal(restored.correlations(), a.correlations())

    def test_same_engine_round_trips(self, batch):
        traces, cts = batch
        for mode in ("batched", "per-byte"):
            src = CPAAttack(S, accumulate=mode)
            src.add_traces(traces, cts)
            dst = CPAAttack(S, accumulate=mode).load_state_arrays(
                src.state_arrays()
            )
            assert np.array_equal(dst.correlations(), src.correlations())
            assert dst.n_traces == src.n_traces

    def test_cache_token_engine_agnostic(self):
        a, b = engines((3, 17))
        assert a.cache_token() == b.cache_token()

    def test_rejects_unknown_layout(self):
        with pytest.raises(AttackError, match="unrecognized"):
            CPAAttack(S).load_state_arrays({"sums": np.zeros(3)})

    def test_rejects_inconsistent_per_byte_dump(self, batch):
        traces, cts = batch
        _, b = engines()
        b.add_traces(traces, cts)
        dump = dict(b.state_arrays())
        dump["b07_s_y"] = dump["b07_s_y"] + 1.0
        with pytest.raises(AttackError, match="byte 7"):
            CPAAttack(S, accumulate="batched").load_state_arrays(dump)


class TestEngineSelection:
    def test_unknown_accumulate_rejected(self):
        with pytest.raises(ConfigurationError, match="accumulate"):
            CPAAttack(S, accumulate="vectorized")

    def test_backend_resolves_default_engine(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert CPAAttack(S).accumulate == "batched"
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert CPAAttack(S).accumulate == "per-byte"

    def test_cross_engine_merge_rejected(self, batch):
        traces, cts = batch
        a, b = engines()
        a.add_traces(traces[:100], cts[:100])
        b.add_traces(traces[100:200], cts[100:200])
        with pytest.raises(AttackError, match="engine"):
            a.merge(b)

    def test_pickle_round_trip_both_engines(self, batch):
        import pickle

        traces, cts = batch
        for mode in ("batched", "per-byte"):
            attack = CPAAttack(S, accumulate=mode)
            attack.add_traces(traces, cts)
            clone = pickle.loads(pickle.dumps(attack))
            assert np.array_equal(clone.correlations(), attack.correlations())


class TestCorrelationCache:
    def test_repeat_calls_reuse_the_matrix(self, batch):
        traces, cts = batch
        for mode in ("batched", "per-byte"):
            attack = CPAAttack(S, accumulate=mode)
            attack.add_traces(traces, cts)
            rho = attack.correlations()
            assert attack.correlations() is rho
            assert not rho.flags.writeable

    def test_update_invalidates(self, batch):
        traces, cts = batch
        attack = CPAAttack(S)
        attack.add_traces(traces[:400], cts[:400])
        before = attack.correlations()
        attack.add_traces(traces[400:], cts[400:])
        after = attack.correlations()
        assert after is not before
        assert not np.array_equal(after, before)

    def test_merge_invalidates(self, batch):
        traces, cts = batch
        a = CPAAttack(S)
        a.add_traces(traces[:400], cts[:400])
        before = a.correlations()
        other = CPAAttack(S)
        other.add_traces(traces[400:], cts[400:])
        assert a.merge(other).correlations() is not before

    def test_state_load_invalidates(self, batch):
        traces, cts = batch
        a = CPAAttack(S)
        a.add_traces(traces[:400], cts[:400])
        before = a.correlations()
        full = CPAAttack(S)
        full.add_traces(traces, cts)
        a.load_state_arrays(full.state_arrays())
        assert np.array_equal(a.correlations(), full.correlations())
        assert not np.array_equal(a.correlations(), before)

    def test_cached_matrix_matches_fresh_compute(self, batch):
        traces, cts = batch
        attack = CPAAttack(S)
        attack.add_traces(traces, cts)
        cached = attack.correlations()
        fresh = CPAAttack(S)
        fresh.add_traces(traces, cts)
        assert np.array_equal(cached, fresh.correlations())
