"""Tests for the framed covert-channel protocol."""

import numpy as np
import pytest

from repro.attacks.covert import CovertChannelConfig
from repro.attacks.covert_protocol import (
    FramedCovertChannel,
    crc8,
    repeat_decode,
    repeat_encode,
)
from repro.errors import CovertChannelError
from tests.test_covert import _make_channel


@pytest.fixture(scope="module")
def clean_channel(zu3eg_device):
    cfg = CovertChannelConfig(lf_noise_rms=0.0, white_noise_rms=0.0)
    return _make_channel(zu3eg_device, cfg)


@pytest.fixture(scope="module")
def noisy_channel(zu3eg_device):
    cfg = CovertChannelConfig(lf_noise_rms=9e-3)
    return _make_channel(zu3eg_device, cfg)


class TestCrc8:
    def test_deterministic(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0])
        np.testing.assert_array_equal(crc8(bits), crc8(bits))

    def test_detects_single_bit_flip(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            bits = rng.integers(0, 2, 64)
            corrupted = bits.copy()
            corrupted[rng.integers(0, 64)] ^= 1
            assert not np.array_equal(crc8(bits), crc8(corrupted))

    def test_eight_bits_out(self):
        assert crc8(np.zeros(16, dtype=int)).shape == (8,)

    def test_non_binary_rejected(self):
        with pytest.raises(CovertChannelError):
            crc8(np.array([0, 2]))


class TestRepetition:
    def test_roundtrip_clean(self):
        bits = np.array([1, 0, 0, 1, 1])
        np.testing.assert_array_equal(
            repeat_decode(repeat_encode(bits, 3), 3), bits
        )

    def test_majority_corrects_single_error(self):
        coded = repeat_encode(np.array([1, 0]), 3)
        coded[1] ^= 1  # one flip inside the first group
        np.testing.assert_array_equal(repeat_decode(coded, 3), [1, 0])

    def test_even_rate_rejected(self):
        with pytest.raises(CovertChannelError):
            repeat_encode(np.array([1]), 2)
        with pytest.raises(CovertChannelError):
            repeat_decode(np.zeros(4, dtype=int), 2)

    def test_misaligned_stream_rejected(self):
        with pytest.raises(CovertChannelError):
            repeat_decode(np.zeros(7, dtype=int), 3)


class TestFramedTransfer:
    def test_clean_transfer_perfect(self, clean_channel, rng):
        framed = FramedCovertChannel(clean_channel, packet_payload_bits=128)
        payload = rng.integers(0, 2, 500)
        result = framed.transfer(payload, 4e-3, rng=0)
        assert result.packet_error_rate == 0.0
        assert result.residual_ber == 0.0
        np.testing.assert_array_equal(result.decoded, payload)

    def test_packet_count(self, clean_channel, rng):
        framed = FramedCovertChannel(clean_channel, packet_payload_bits=100)
        result = framed.transfer(rng.integers(0, 2, 250), 4e-3, rng=0)
        assert len(result.packets) == 3

    def test_crc_flags_corrupt_packets(self, noisy_channel, rng):
        """At an aggressive bit time, some packets corrupt; CRC-8 must
        catch (nearly) all packets carrying bit errors."""
        framed = FramedCovertChannel(noisy_channel, packet_payload_bits=256)
        payload = rng.integers(0, 2, 4096)
        result = framed.transfer(payload, 2e-3, rng=1)
        flagged_correctly = sum(
            1
            for p in result.packets
            if (p.bit_errors > 0) == (not p.crc_ok)
        )
        assert flagged_correctly >= len(result.packets) - 1

    def test_repetition_lowers_residual_ber(self, noisy_channel, rng):
        payload = rng.integers(0, 2, 3000)
        uncoded = FramedCovertChannel(noisy_channel, 250, repetition=1)
        coded = FramedCovertChannel(noisy_channel, 250, repetition=3)
        ber_uncoded = uncoded.transfer(payload, 2e-3, rng=2).residual_ber
        ber_coded = coded.transfer(payload, 2e-3, rng=3).residual_ber
        assert ber_coded < ber_uncoded

    def test_repetition_costs_goodput_when_clean(self, clean_channel, rng):
        payload = rng.integers(0, 2, 1000)
        fast = FramedCovertChannel(clean_channel, 250, repetition=1)
        slow = FramedCovertChannel(clean_channel, 250, repetition=3)
        g_fast = fast.transfer(payload, 4e-3, rng=0).goodput
        g_slow = slow.transfer(payload, 4e-3, rng=0).goodput
        assert g_fast > 2 * g_slow

    def test_goodput_below_raw_rate(self, clean_channel, rng):
        framed = FramedCovertChannel(clean_channel, 512)
        result = framed.transfer(rng.integers(0, 2, 2048), 4e-3, rng=0)
        assert 0 < result.goodput < 250.0

    def test_validation(self, clean_channel):
        with pytest.raises(CovertChannelError):
            FramedCovertChannel(clean_channel, packet_payload_bits=4)
        with pytest.raises(CovertChannelError):
            FramedCovertChannel(clean_channel, repetition=2)
        framed = FramedCovertChannel(clean_channel)
        with pytest.raises(CovertChannelError):
            framed.transfer(np.array([]), 4e-3)
