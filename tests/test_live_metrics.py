"""Unit tests for the live-metrics registry (repro.telemetry.metrics).

The determinism contract mirrors the streaming accumulators: fixed
bucket ladders, byte-stable snapshots, exact merge/diff algebra.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.metrics import (
    BYTES_BUCKETS,
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    METRICS_SCHEMA_VERSION,
    MetricsRegistry,
    diff_snapshots,
    exponential_buckets,
    get_registry,
    histogram_quantile,
    merge_snapshots,
    parse_prometheus,
)


# ----------------------------------------------------------------------
# Buckets
# ----------------------------------------------------------------------
def test_exponential_buckets_fixed_and_increasing():
    buckets = exponential_buckets(1e-4, 4.0, 12)
    assert buckets == LATENCY_BUCKETS
    assert all(b2 > b1 for b1, b2 in zip(buckets, buckets[1:]))
    assert len(BYTES_BUCKETS) == 10 and len(COUNT_BUCKETS) == 10


@pytest.mark.parametrize("bad", [(0, 2, 4), (1, 1.0, 4), (1, 2, 0)])
def test_exponential_buckets_rejects_degenerate(bad):
    with pytest.raises(ConfigurationError):
        exponential_buckets(*bad)


# ----------------------------------------------------------------------
# Counters / gauges / histograms
# ----------------------------------------------------------------------
def test_counter_inc_and_labels():
    reg = MetricsRegistry(enabled=True)
    c = reg.counter("repro_test_total", "help", labelnames=("verb",))
    c.inc(verb="GET")
    c.inc(2, verb="GET")
    c.inc(verb="PUT")
    assert c.value(verb="GET") == 3
    assert c.value(verb="PUT") == 1
    with pytest.raises(ConfigurationError):
        c.inc(-1, verb="GET")
    with pytest.raises(ConfigurationError):
        c.inc(1, wrong="label")


def test_gauge_set_inc_dec_and_inflight():
    reg = MetricsRegistry(enabled=True)
    g = reg.gauge("repro_test_inflight")
    g.set(5)
    g.inc()
    g.dec(2)
    assert g.value() == 4
    with g.track_inflight():
        assert g.value() == 5
    assert g.value() == 4


def test_histogram_observe_and_overflow():
    reg = MetricsRegistry(enabled=True)
    h = reg.histogram("repro_test_seconds", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 5.0, 50.0):
        h.observe(v)
    snap = reg.snapshot()
    hist = snap["histograms"]["repro_test_seconds"]
    assert hist["counts"] == [1, 1, 1, 1]
    assert hist["count"] == 4
    assert hist["sum"] == pytest.approx(55.55)


def test_histogram_rejects_unsorted_buckets():
    reg = MetricsRegistry(enabled=True)
    with pytest.raises(ConfigurationError):
        reg.histogram("repro_bad", buckets=(1.0, 1.0))


def test_registration_is_idempotent_but_kind_checked():
    reg = MetricsRegistry(enabled=True)
    a = reg.counter("repro_twice_total")
    assert reg.counter("repro_twice_total") is a
    with pytest.raises(ConfigurationError):
        reg.gauge("repro_twice_total")


def test_invalid_metric_name_rejected():
    reg = MetricsRegistry(enabled=True)
    with pytest.raises(ConfigurationError):
        reg.counter("9starts_with_digit")
    with pytest.raises(ConfigurationError):
        reg.counter("has-dash")


def test_disabled_registry_is_a_noop():
    reg = MetricsRegistry(enabled=False)
    c = reg.counter("repro_off_total")
    h = reg.histogram("repro_off_seconds")
    g = reg.gauge("repro_off_gauge")
    c.inc()
    h.observe(1.0)
    g.set(9)
    snap = reg.snapshot()
    assert snap["counters"] == {} and snap["histograms"] == {}
    assert snap["gauges"] == {}


# ----------------------------------------------------------------------
# Snapshots: determinism, merge, diff
# ----------------------------------------------------------------------
def _populated(order="ab"):
    reg = MetricsRegistry(enabled=True)
    c = reg.counter(
        "repro_items_total", labelnames=("kind",), deterministic=True
    )
    h = reg.histogram(
        "repro_shard_items",
        deterministic=True,
        buckets=COUNT_BUCKETS,
    )
    t = reg.histogram("repro_wall_seconds")  # timing: not deterministic
    g = reg.gauge("repro_depth")
    for kind in order:
        c.inc(10, kind=kind)
    for v in (3, 17, 400):
        h.observe(v)
    t.observe(0.123)
    g.set(2)
    return reg


def test_snapshot_bit_identical_regardless_of_observation_order():
    a = json.dumps(_populated("ab").snapshot(), sort_keys=True)
    b = json.dumps(_populated("ba").snapshot(), sort_keys=True)
    assert a == b


def test_deterministic_snapshot_excludes_timing_and_gauges():
    snap = _populated().snapshot(deterministic_only=True)
    assert snap["schema"] == METRICS_SCHEMA_VERSION
    assert set(snap["counters"]) == {
        'repro_items_total{kind="a"}',
        'repro_items_total{kind="b"}',
    }
    assert set(snap["histograms"]) == {"repro_shard_items"}
    assert snap["gauges"] == {}


def test_snapshot_values_canonicalized_to_ints():
    reg = MetricsRegistry(enabled=True)
    reg.counter("repro_n_total").inc(2.0)
    snap = reg.snapshot()
    assert snap["counters"]["repro_n_total"] == 2
    assert isinstance(snap["counters"]["repro_n_total"], int)


def test_merge_snapshots_adds_exactly():
    a = _populated().snapshot()
    b = _populated().snapshot()
    merged = merge_snapshots(a, b)
    assert merged["counters"]['repro_items_total{kind="a"}'] == 20
    hist = merged["histograms"]["repro_shard_items"]
    assert hist["count"] == 6
    assert sum(hist["counts"]) == 6
    assert merged["gauges"]["repro_depth"] == 4


def test_merge_rejects_mismatched_ladders():
    a = _populated().snapshot()
    b = json.loads(json.dumps(a))
    b["histograms"]["repro_shard_items"]["buckets"][0] = 2.0
    with pytest.raises(ConfigurationError):
        merge_snapshots(a, b)


def test_diff_snapshots_is_the_per_run_delta():
    reg = _populated()
    before = reg.snapshot()
    reg.counter("repro_items_total", labelnames=("kind",)).inc(5, kind="a")
    reg.histogram("repro_shard_items", buckets=COUNT_BUCKETS).observe(9)
    after = reg.snapshot()
    delta = diff_snapshots(before, after)
    assert delta["counters"] == {'repro_items_total{kind="a"}': 5}
    assert delta["histograms"]["repro_shard_items"]["count"] == 1
    assert delta["gauges"] == {}
    # no activity -> empty delta
    assert diff_snapshots(after, after)["counters"] == {}
    assert diff_snapshots(after, after)["histograms"] == {}


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
def test_render_prometheus_parses_and_matches_snapshot():
    reg = _populated()
    text = reg.render_prometheus()
    assert "# TYPE repro_items_total counter" in text
    assert "# TYPE repro_wall_seconds histogram" in text
    parsed = parse_prometheus(text)
    assert parsed['repro_items_total{kind="a"}'] == 10
    assert parsed["repro_depth"] == 2
    # histogram buckets are cumulative and end at +Inf == _count
    assert parsed['repro_shard_items_bucket{le="+Inf"}'] == 3
    assert parsed["repro_shard_items_count"] == 3
    assert parsed["repro_shard_items_sum"] == 420


def test_render_prometheus_bucket_cumulativity():
    reg = MetricsRegistry(enabled=True)
    h = reg.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
    for v in (0.01, 0.5, 2.0):
        h.observe(v)
    parsed = parse_prometheus(reg.render_prometheus())
    assert parsed['repro_lat_seconds_bucket{le="0.1"}'] == 1
    assert parsed['repro_lat_seconds_bucket{le="1"}'] == 2
    assert parsed['repro_lat_seconds_bucket{le="+Inf"}'] == 3


def test_unlabeled_counter_renders_zero_before_first_inc():
    reg = MetricsRegistry(enabled=True)
    reg.counter("repro_quiet_total", "never incremented")
    parsed = parse_prometheus(reg.render_prometheus())
    assert parsed["repro_quiet_total"] == 0


# ----------------------------------------------------------------------
# Quantiles
# ----------------------------------------------------------------------
def test_histogram_quantile_interpolates():
    hist = {"buckets": [1.0, 2.0, 4.0], "counts": [0, 100, 0, 0],
            "sum": 150.0, "count": 100}
    # all mass in (1, 2]: p50 is the bucket midpoint
    assert histogram_quantile(hist, 0.5) == pytest.approx(1.5)
    assert histogram_quantile(hist, 0.0) == pytest.approx(1.0)
    assert histogram_quantile(hist, 1.0) == pytest.approx(2.0)


def test_histogram_quantile_overflow_and_empty():
    hist = {"buckets": [1.0, 2.0], "counts": [0, 0, 10], "sum": 50.0,
            "count": 10}
    assert histogram_quantile(hist, 0.99) == 2.0  # clamped to top bound
    empty = {"buckets": [1.0], "counts": [0, 0], "sum": 0.0, "count": 0}
    assert histogram_quantile(empty, 0.5) == 0.0
    with pytest.raises(ConfigurationError):
        histogram_quantile(hist, 1.5)


def test_get_registry_is_process_wide_singleton():
    assert get_registry() is get_registry()
