"""Tests for pseudo-bitstream generation and serialization."""

import pytest

from repro.errors import NetlistError
from repro.fpga.bitstream import Bitstream, generate_bitstream
from repro.fpga.netlist import Netlist
from repro.fpga.placement import Placer
from repro.fpga.primitives import DSP48E1, FDRE, LUT


@pytest.fixture()
def small_design(basys3_device):
    nl = Netlist("demo")
    nl.add_port("clk", "in")
    nl.add_cell(DSP48E1.leakydsp_config("dsp", last=True))
    nl.add_cell(LUT.inverter("inv"))
    nl.add_cell(FDRE("ff"))
    nl.connect("n0", ("clk", "O"), [("inv", "I0")])
    nl.connect("n1", ("inv", "O"), [("dsp", "A")])
    nl.connect("n2", ("dsp", "P"), [("ff", "D")])
    nl.connect("n3", ("ff", "Q"), [("ff", "D2")])
    placement = Placer(basys3_device).place(nl)
    return nl, placement


class TestGeneration:
    def test_one_frame_per_cell(self, small_design):
        nl, placement = small_design
        bs = generate_bitstream(nl, placement)
        assert len(bs.frames) == len(nl.cells)

    def test_one_route_per_net(self, small_design):
        nl, placement = small_design
        bs = generate_bitstream(nl, placement)
        assert len(bs.routes) == len(nl.nets)

    def test_frames_carry_attributes(self, small_design):
        nl, placement = small_design
        bs = generate_bitstream(nl, placement)
        frame = bs.frame_for_cell("dsp")
        assert frame.attribute("PREG") == 1
        assert frame.attribute("USE_MULT") == "MULTIPLY"

    def test_lut_init_serialized(self, small_design):
        nl, placement = small_design
        bs = generate_bitstream(nl, placement)
        frame = bs.frame_for_cell("inv")
        assert frame.attribute("INIT") == 0b01
        assert frame.attribute("K") == 1

    def test_frame_positions_match_placement(self, small_design):
        nl, placement = small_design
        bs = generate_bitstream(nl, placement)
        site = placement.site_of("dsp")
        frame = bs.frame_for_cell("dsp")
        assert (frame.site_x, frame.site_y) == (site.x, site.y)

    def test_frames_of_type(self, small_design):
        nl, placement = small_design
        bs = generate_bitstream(nl, placement)
        assert len(bs.frames_of_type("DSP48E1")) == 1
        assert len(bs.frames_of_type("LUT")) == 1

    def test_unknown_cell_frame_raises(self, small_design):
        nl, placement = small_design
        bs = generate_bitstream(nl, placement)
        with pytest.raises(NetlistError):
            bs.frame_for_cell("ghost")

    def test_unplaced_netlist_rejected(self, basys3_device):
        nl = Netlist("demo")
        nl.add_port("clk", "in")
        nl.add_cell(LUT.inverter("inv"))
        nl.connect("n0", ("clk", "O"), [("inv", "I0")])
        from repro.fpga.placement import Placement
        from repro.errors import PlacementError

        with pytest.raises(PlacementError):
            generate_bitstream(nl, Placement(basys3_device))

    def test_attribute_default(self, small_design):
        nl, placement = small_design
        bs = generate_bitstream(nl, placement)
        assert bs.frame_for_cell("dsp").attribute("NOPE", "fallback") == "fallback"


class TestSerialization:
    def test_json_roundtrip(self, small_design):
        nl, placement = small_design
        bs = generate_bitstream(nl, placement)
        restored = Bitstream.from_json(bs.to_json())
        assert restored.design == bs.design
        assert restored.device == bs.device
        assert len(restored.frames) == len(bs.frames)
        assert len(restored.routes) == len(bs.routes)

    def test_roundtrip_preserves_attributes(self, small_design):
        nl, placement = small_design
        bs = generate_bitstream(nl, placement)
        restored = Bitstream.from_json(bs.to_json())
        assert restored.frame_for_cell("dsp").attribute("PREG") == 1

    def test_roundtrip_preserves_route_pins(self, small_design):
        nl, placement = small_design
        bs = generate_bitstream(nl, placement)
        restored = Bitstream.from_json(bs.to_json())
        orig = {r.net: (r.driver, r.sinks) for r in bs.routes}
        back = {r.net: (r.driver, r.sinks) for r in restored.routes}
        assert orig == back
