"""Tests for the voltage-dependent timing models."""

import numpy as np
import pytest

from repro.config import DEFAULT_CONSTANTS, PhysicalConstants
from repro.errors import ConfigurationError, NetlistError
from repro.fpga.netlist import Cell, Netlist
from repro.fpga.primitives import CARRY4, DSP48E1, FDRE, IDELAYE2, LUT
from repro.timing.delay import delay_scale, delay_sensitivity, scaled_delay
from repro.timing.paths import (
    PATH_DELAYS,
    ROUTING_DELAY_BASE,
    cell_through_delay,
    combinational_path_delay,
    dsp_chain_delay,
)
from repro.timing.sampling import (
    ClockSpec,
    capture_bits,
    capture_probability,
)


class TestDelayScale:
    def test_unity_at_nominal(self):
        assert delay_scale(DEFAULT_CONSTANTS.v_nominal) == pytest.approx(1.0)

    def test_droop_slows(self):
        assert delay_scale(0.95) > 1.0

    def test_overvolt_speeds_up(self):
        assert delay_scale(1.05) < 1.0

    def test_monotone_decreasing_in_v(self):
        v = np.linspace(0.8, 1.1, 50)
        s = delay_scale(v)
        assert np.all(np.diff(s) < 0)

    def test_alpha_power_law(self):
        c = PhysicalConstants(alpha=2.0)
        assert delay_scale(0.5, c) == pytest.approx(4.0)

    def test_vectorized(self):
        s = delay_scale(np.array([1.0, 0.9]))
        assert s.shape == (2,)

    def test_scalar_in_scalar_out(self):
        assert isinstance(delay_scale(0.98), float)

    def test_nonpositive_voltage_rejected(self):
        with pytest.raises(ConfigurationError):
            delay_scale(0.0)
        with pytest.raises(ConfigurationError):
            delay_scale(np.array([1.0, -0.1]))


class TestScaledDelay:
    def test_scales_nominal(self):
        assert scaled_delay(1e-9, 1.0) == pytest.approx(1e-9)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            scaled_delay(-1e-9, 1.0)

    def test_sensitivity_negative_and_proportional(self):
        s1 = delay_sensitivity(1e-9)
        s2 = delay_sensitivity(2e-9)
        assert s1 < 0
        assert s2 == pytest.approx(2 * s1)


class TestPathDelays:
    def test_lut_delay(self):
        cell = Cell("l", LUT.inverter("l"))
        assert cell_through_delay(cell) == PATH_DELAYS["LUT"]

    def test_dsp_delay_sums_stages(self):
        cell = Cell("d", DSP48E1.leakydsp_config("d"))
        total = cell_through_delay(cell)
        assert total == pytest.approx(sum(d for _n, d in cell.primitive.stage_delays()))

    def test_idelay_uses_programmed_taps(self):
        prim = IDELAYE2("i")
        prim.load_tap(4)
        assert cell_through_delay(Cell("i", prim)) == pytest.approx(prim.delay())

    def test_ff_no_comb_delay(self):
        assert cell_through_delay(Cell("f", FDRE("f"))) == 0.0

    def test_unknown_primitive_rejected(self):
        class Weird:
            TYPE = "WEIRD"

        with pytest.raises(NetlistError):
            cell_through_delay(Cell("w", Weird()))

    def test_path_includes_routing(self):
        cells = [Cell(f"l{i}", LUT.inverter(f"l{i}")) for i in range(3)]
        total = combinational_path_delay(cells)
        expected = 3 * PATH_DELAYS["LUT"] + 2 * ROUTING_DELAY_BASE
        assert total == pytest.approx(expected)

    def test_empty_path_is_zero(self):
        assert combinational_path_delay([]) == 0.0

    def test_dsp_chain_delay_sums_blocks(self):
        nl = Netlist("t")
        for i in range(3):
            nl.add_cell(DSP48E1.leakydsp_config(f"d{i}"))
        total = dsp_chain_delay(nl)
        one = cell_through_delay(Cell("d", DSP48E1.leakydsp_config("d")))
        assert total == pytest.approx(3 * one + 2 * ROUTING_DELAY_BASE)

    def test_dsp_chain_without_dsps_rejected(self):
        with pytest.raises(NetlistError):
            dsp_chain_delay(Netlist("empty"))


class TestClockSpec:
    def test_period(self):
        assert ClockSpec(100e6).period == pytest.approx(10e-9)

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            ClockSpec(0.0)

    def test_cycles_to_time(self):
        assert ClockSpec(100e6).cycles_to_time(3) == pytest.approx(30e-9)

    def test_samples_in(self):
        assert ClockSpec(100e6).samples_in(95e-9) == 9

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            ClockSpec(1e6).samples_in(-1.0)


class TestCaptureProbability:
    def test_half_at_zero_slack(self):
        p = capture_probability(1e-9, 1e-9, 10e-12)
        assert p == pytest.approx(0.5)

    def test_saturates_with_slack(self):
        assert capture_probability(0.0, 1e-9, 10e-12) == pytest.approx(1.0)
        assert capture_probability(1e-9, 0.0, 10e-12) == pytest.approx(0.0, abs=1e-12)

    def test_monotone_in_phase(self):
        phases = np.linspace(0, 2e-9, 30)
        p = capture_probability(1e-9, phases, 20e-12)
        assert np.all(np.diff(p) >= 0)

    def test_zero_window_hard_threshold(self):
        assert capture_probability(1e-9, 2e-9, 0.0) == 1.0
        assert capture_probability(2e-9, 1e-9, 0.0) == 0.0

    def test_negative_window_rejected(self):
        with pytest.raises(ConfigurationError):
            capture_probability(0.0, 0.0, -1e-12)

    def test_broadcasting(self):
        taus = np.zeros((5, 8))
        p = capture_probability(taus, 1e-9, 1e-12)
        assert p.shape == (5, 8)

    def test_no_overflow_for_extreme_slack(self):
        p = capture_probability(0.0, 1.0, 1e-15)
        assert np.isfinite(p)


class TestCaptureBits:
    def test_shapes(self, rng):
        taus = np.full((10, 4), 1e-9)
        bits = capture_bits(taus, 2e-9, 1e-12, rng=rng)
        assert bits.shape == (10, 4)

    def test_sure_capture(self, rng):
        bits = capture_bits(np.zeros(100), 1e-9, 1e-12, rng=rng)
        assert bits.sum() == 100

    def test_sure_miss(self, rng):
        bits = capture_bits(np.full(100, 2e-9), 1e-9, 1e-12, rng=rng)
        assert bits.sum() == 0

    def test_metastable_mix(self):
        bits = capture_bits(np.full(20000, 1e-9), 1e-9, 10e-12, rng=0)
        assert bits.mean() == pytest.approx(0.5, abs=0.02)
