"""Unit tests for the streaming accumulators
(:mod:`repro.analysis.streaming`): chunk/merge semantics, agreement
with batch NumPy, and input validation."""

import numpy as np
import pytest

from repro.analysis.streaming import (
    SharedTraceMoments,
    StackedStreamingPearson,
    StreamingDiffMeans,
    StreamingPearson,
    StreamingWelchT,
    SumMoments,
    WelfordMoments,
    iter_chunk_slices,
    validate_chunk_size,
)
from repro.analysis.tvla import StreamingTvla, fixed_vs_random_t
from repro.errors import AttackError, ConfigurationError, ReproError


def batch_pearson(x, y):
    """Reference (n_vars, n_samples) Pearson via np.corrcoef."""
    k, w = x.shape[1], y.shape[1]
    full = np.corrcoef(np.hstack([x, y]), rowvar=False)
    return np.nan_to_num(full[:k, k:], nan=0.0)


class TestChunkValidation:
    def test_accepts_positive_ints(self):
        assert validate_chunk_size(1) == 1
        assert validate_chunk_size(np.int64(7)) == 7

    @pytest.mark.parametrize("bad", [0, -1, -4096, 2.5, "64", True, False])
    def test_rejects_non_positive_and_non_integers(self, bad):
        with pytest.raises(ConfigurationError):
            validate_chunk_size(bad)

    def test_none_requires_opt_in(self):
        assert validate_chunk_size(None, allow_none=True) is None
        with pytest.raises(ConfigurationError):
            validate_chunk_size(None)

    def test_errors_are_repro_errors(self):
        with pytest.raises(ReproError):
            validate_chunk_size(0)

    def test_iter_chunk_slices_covers_range(self):
        slices = list(iter_chunk_slices(10, 4))
        assert [(s.start, s.stop) for s in slices] == [(0, 4), (4, 8), (8, 10)]

    def test_iter_chunk_slices_none_is_one_chunk(self):
        assert [(s.start, s.stop) for s in iter_chunk_slices(7, None)] == [(0, 7)]

    def test_iter_chunk_slices_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            list(iter_chunk_slices(0, 4))
        with pytest.raises(ConfigurationError):
            list(iter_chunk_slices(10, 0))


class TestEmptyChunks:
    def test_pearson_rejects_empty_chunk(self):
        acc = StreamingPearson(3, 5)
        with pytest.raises(AttackError, match="empty"):
            acc.update(np.empty((0, 3)), np.empty((0, 5)))

    def test_moments_reject_empty_chunk(self):
        for acc in (SumMoments(4), WelfordMoments(4)):
            with pytest.raises(AttackError, match="empty"):
                acc.update(np.empty((0, 4)))

    def test_welch_rejects_empty_chunk(self):
        with pytest.raises(AttackError, match="empty"):
            StreamingWelchT(4).update_fixed(np.empty((0, 4)))

    def test_diff_means_rejects_empty_chunk(self):
        with pytest.raises(AttackError, match="empty"):
            StreamingDiffMeans(2, 4).update(np.empty((0, 2)), np.empty((0, 4)))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(AttackError, match="2-D"):
            SumMoments(4).update(np.ones(4))

    def test_rejects_wrong_width(self):
        with pytest.raises(AttackError, match="columns"):
            SumMoments(4).update(np.ones((3, 5)))


class TestMergeCompatibility:
    def test_rejects_cross_type_merge(self):
        with pytest.raises(AttackError, match="cannot merge"):
            SumMoments(4).merge(WelfordMoments(4))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(AttackError, match="n_columns"):
            SumMoments(4).merge(SumMoments(5))
        with pytest.raises(AttackError, match="n_samples"):
            StreamingPearson(3, 5).merge(StreamingPearson(3, 6))
        with pytest.raises(AttackError, match="n_vars"):
            StreamingDiffMeans(2, 5).merge(StreamingDiffMeans(3, 5))

    def test_tvla_rejects_foreign_type(self):
        with pytest.raises(AttackError, match="cannot merge"):
            StreamingTvla(5).merge(StreamingWelchT(5))


class TestMoments:
    @pytest.mark.parametrize("cls", [SumMoments, WelfordMoments])
    def test_matches_numpy(self, cls, rng):
        data = rng.normal(3.0, 2.0, size=(200, 6))
        acc = cls(6)
        for sl in iter_chunk_slices(200, 33):
            acc.update(data[sl])
        n, mean, var = acc.finalize()
        assert n == 200
        np.testing.assert_allclose(mean, data.mean(axis=0), rtol=1e-12)
        np.testing.assert_allclose(var, data.var(axis=0, ddof=1), rtol=1e-9)

    def test_sum_moments_merge_is_bit_identical(self, rng):
        data = rng.integers(-50, 50, size=(150, 4)).astype(float)
        whole = SumMoments(4).update(data)
        left = SumMoments(4).update(data[:70])
        left.merge(SumMoments(4).update(data[70:]))
        assert left.n == whole.n
        np.testing.assert_array_equal(left.mean, whole.mean)
        np.testing.assert_array_equal(left.variance(), whole.variance())

    def test_welford_merge_matches_single_pass(self, rng):
        # Welford trades bit-reproducibility for stability: the merge
        # agrees with a single pass to float rounding, not bit-for-bit.
        data = rng.integers(-50, 50, size=(150, 4)).astype(float)
        whole = WelfordMoments(4).update(data)
        left = WelfordMoments(4).update(data[:70])
        left.merge(WelfordMoments(4).update(data[70:]))
        assert left.n == whole.n
        np.testing.assert_allclose(left.mean, whole.mean, rtol=1e-12)
        np.testing.assert_allclose(left.variance(), whole.variance(), rtol=1e-10)

    def test_merge_into_empty(self):
        data = np.arange(12.0).reshape(4, 3)
        acc = WelfordMoments(3)
        acc.merge(WelfordMoments(3).update(data))
        np.testing.assert_allclose(acc.mean, data.mean(axis=0))

    def test_welford_variance_never_negative_on_huge_offset(self):
        # Classic sum-of-squares cancellation: constant data at 1e9.
        data = np.full((1000, 2), 1e9) + np.linspace(0, 1e-3, 1000)[:, None]
        acc = WelfordMoments(2)
        for sl in iter_chunk_slices(1000, 17):
            acc.update(data[sl])
        assert np.all(acc.variance() >= 0.0)

    def test_sum_moments_variance_clamped(self):
        acc = SumMoments(1).update(np.full((100, 1), 1e9))
        assert np.all(acc.variance() >= 0.0)

    @pytest.mark.parametrize("cls", [SumMoments, WelfordMoments])
    def test_finalize_guards(self, cls):
        with pytest.raises(AttackError):
            cls(3).mean
        with pytest.raises(AttackError):
            cls(3).update(np.ones((1, 3))).variance()
        with pytest.raises(AttackError):
            cls(0)


class TestStreamingPearson:
    def test_matches_batch_corrcoef(self, rng):
        x = rng.integers(0, 9, size=(300, 4)).astype(float)
        y = rng.integers(-40, 40, size=(300, 7)).astype(float)
        acc = StreamingPearson(4, 7)
        for sl in iter_chunk_slices(300, 41):
            acc.update(x[sl], y[sl])
        np.testing.assert_allclose(acc.finalize(), batch_pearson(x, y), atol=1e-12)

    def test_bit_identical_across_chunkings(self, rng):
        x = rng.integers(0, 9, size=(256, 3)).astype(float)
        y = rng.integers(-40, 40, size=(256, 5)).astype(float)
        reference = StreamingPearson(3, 5).update(x, y).finalize()
        for chunk in (1, 7, 64, 255):
            acc = StreamingPearson(3, 5)
            for sl in iter_chunk_slices(256, chunk):
                acc.update(x[sl], y[sl])
            np.testing.assert_array_equal(acc.finalize(), reference)

    def test_bit_identical_across_merge_orders(self, rng):
        x = rng.integers(0, 9, size=(120, 2)).astype(float)
        y = rng.integers(-40, 40, size=(120, 4)).astype(float)
        parts = [
            StreamingPearson(2, 4).update(x[sl], y[sl])
            for sl in iter_chunk_slices(120, 30)
        ]
        reference = StreamingPearson(2, 4).update(x, y).finalize()
        forward = StreamingPearson(2, 4)
        for p in parts:
            forward.merge(p)
        backward = StreamingPearson(2, 4)
        for p in reversed(parts):
            backward.merge(p)
        np.testing.assert_array_equal(forward.finalize(), reference)
        np.testing.assert_array_equal(backward.finalize(), reference)

    def test_constant_columns_correlate_to_zero(self, rng):
        x = np.ones((50, 2))
        y = rng.normal(size=(50, 3))
        rho = StreamingPearson(2, 3).update(x, y).finalize()
        np.testing.assert_array_equal(rho, np.zeros((2, 3)))

    def test_row_mismatch_rejected(self):
        with pytest.raises(AttackError, match="rows"):
            StreamingPearson(2, 3).update(np.ones((4, 2)), np.ones((5, 3)))

    def test_needs_two_rows(self):
        acc = StreamingPearson(2, 3).update(np.ones((1, 2)), np.ones((1, 3)))
        with pytest.raises(AttackError):
            acc.finalize()


class TestStreamingWelchT:
    def test_matches_batch_tvla(self, rng):
        fixed = rng.integers(0, 64, size=(400, 9)).astype(float)
        rand = rng.integers(0, 64, size=(380, 9)).astype(float)
        acc = StreamingWelchT(9)
        for sl in iter_chunk_slices(400, 57):
            acc.update_fixed(fixed[sl])
        for sl in iter_chunk_slices(380, 91):
            acc.update_random(rand[sl])
        np.testing.assert_array_equal(
            acc.finalize(), fixed_vs_random_t(fixed, rand).t_statistics
        )

    def test_merge_partial_assessments(self, rng):
        fixed = rng.normal(size=(100, 5))
        rand = rng.normal(0.5, 1.0, size=(100, 5))
        a = StreamingWelchT(5).update_fixed(fixed[:50]).update_random(rand[:30])
        b = StreamingWelchT(5).update_fixed(fixed[50:]).update_random(rand[30:])
        merged = a.merge(b).finalize()
        np.testing.assert_allclose(
            merged, fixed_vs_random_t(fixed, rand).t_statistics, atol=1e-10
        )

    def test_label_validation(self):
        with pytest.raises(AttackError, match="label"):
            StreamingWelchT(3).update(np.ones((2, 3)), 2)

    def test_needs_two_per_class(self):
        acc = StreamingWelchT(3).update_fixed(np.ones((5, 3)))
        with pytest.raises(AttackError):
            acc.finalize()

    def test_zero_variance_gives_zero_t(self):
        acc = StreamingWelchT(2)
        acc.update_fixed(np.ones((10, 2))).update_random(np.ones((10, 2)))
        np.testing.assert_array_equal(acc.finalize(), np.zeros(2))


class TestStreamingTvla:
    def test_chunked_equals_batch(self, rng):
        fixed = rng.integers(0, 48, size=(300, 6)).astype(np.int16)
        rand = rng.integers(0, 48, size=(300, 6)).astype(np.int16)
        batch = fixed_vs_random_t(fixed, rand)
        acc = StreamingTvla(6)
        for sl in iter_chunk_slices(300, 77):
            acc.update_fixed(fixed[sl])
            acc.update_random(rand[sl])
        streamed = acc.finalize()
        np.testing.assert_array_equal(streamed.t_statistics, batch.t_statistics)
        assert streamed.leaks == batch.leaks

    def test_counts_exposed(self):
        acc = StreamingTvla(3).update_fixed(np.ones((4, 3)))
        assert (acc.n_fixed, acc.n_random, acc.n_samples) == (4, 0, 3)


class TestStreamingDiffMeans:
    def test_matches_batch_partition(self, rng):
        bits = rng.integers(0, 2, size=(200, 5))
        y = rng.integers(-30, 30, size=(200, 8)).astype(float)
        acc = StreamingDiffMeans(5, 8)
        for sl in iter_chunk_slices(200, 37):
            acc.update(bits[sl], y[sl])
        diff = acc.finalize()
        for j in range(5):
            ones = y[bits[:, j] == 1].mean(axis=0)
            zeros = y[bits[:, j] == 0].mean(axis=0)
            np.testing.assert_allclose(diff[j], ones - zeros, atol=1e-12)

    def test_empty_partition_counts_as_zero_mean(self, rng):
        bits = np.ones((20, 1), dtype=int)
        y = rng.normal(size=(20, 3))
        diff = StreamingDiffMeans(1, 3).update(bits, y).finalize()
        np.testing.assert_allclose(diff[0], y.mean(axis=0))

    def test_merge_matches_single_pass(self, rng):
        bits = rng.integers(0, 2, size=(150, 3))
        y = rng.integers(0, 50, size=(150, 4)).astype(float)
        whole = StreamingDiffMeans(3, 4).update(bits, y)
        a = StreamingDiffMeans(3, 4).update(bits[:60], y[:60])
        b = StreamingDiffMeans(3, 4).update(bits[60:], y[60:])
        np.testing.assert_array_equal(a.merge(b).finalize(), whole.finalize())

    def test_bits_shape_validated(self):
        with pytest.raises(AttackError, match="bits"):
            StreamingDiffMeans(2, 3).update(np.ones((4, 3)), np.ones((4, 3)))


class TestSharedTraceMoments:
    def test_matches_sum_moments(self, rng):
        y = rng.integers(-500, 500, size=(120, 6)).astype(float)
        shared = SharedTraceMoments(6)
        plain = SumMoments(6)
        for sl in iter_chunk_slices(120, 17):
            shared.update(y[sl])
            plain.update(y[sl])
        n_s, mean_s, var_s = shared.finalize()
        n_p, mean_p, var_p = plain.finalize()
        assert n_s == n_p
        np.testing.assert_array_equal(mean_s, mean_p)
        np.testing.assert_array_equal(var_s, var_p)

    def test_fold_sums_equals_update(self, rng):
        y = rng.integers(-100, 100, size=(50, 4)).astype(float)
        updated = SharedTraceMoments(4).update(y)
        folded = SharedTraceMoments(4).fold_sums(
            50, y.sum(axis=0), np.einsum("ij,ij->j", y, y)
        )
        assert folded.n == updated.n
        np.testing.assert_array_equal(folded._s, updated._s)
        np.testing.assert_array_equal(folded._s2, updated._s2)

    def test_fold_sums_validates(self):
        acc = SharedTraceMoments(4)
        with pytest.raises(AttackError, match="positive"):
            acc.fold_sums(0, np.zeros(4), np.zeros(4))
        with pytest.raises(AttackError, match="shape"):
            acc.fold_sums(3, np.zeros(5), np.zeros(4))

    def test_merge_bit_identical(self, rng):
        y = rng.integers(0, 1000, size=(90, 3)).astype(float)
        whole = SharedTraceMoments(3).update(y)
        merged = (
            SharedTraceMoments(3).update(y[:40]).merge(
                SharedTraceMoments(3).update(y[40:])
            )
        )
        np.testing.assert_array_equal(merged._s, whole._s)
        np.testing.assert_array_equal(merged._s2, whole._s2)

    def test_merge_rejects_mismatched_width(self):
        with pytest.raises(ReproError):
            SharedTraceMoments(3).merge(SharedTraceMoments(4))

    def test_state_round_trip(self, rng):
        y = rng.integers(0, 50, size=(30, 5)).astype(float)
        src = SharedTraceMoments(5).update(y)
        dst = SharedTraceMoments(5).load_state_arrays(src.state_arrays())
        assert dst.n == src.n
        np.testing.assert_array_equal(dst._s, src._s)
        with pytest.raises(AttackError, match="samples"):
            SharedTraceMoments(6).load_state_arrays(src.state_arrays())

    def test_guards(self):
        with pytest.raises(AttackError):
            SharedTraceMoments(0)
        with pytest.raises(AttackError, match="no data"):
            SharedTraceMoments(2).mean
        with pytest.raises(AttackError, match="ddof"):
            SharedTraceMoments(2).update(np.ones((1, 2))).variance()


class TestStackedStreamingPearson:
    def per_group_reference(self, x, y, groups, nvars):
        out = []
        for g in range(groups):
            acc = StreamingPearson(nvars, y.shape[1])
            acc.update(x[:, g, :], y)
            out.append(acc.finalize())
        return np.stack(out)

    def test_matches_per_group_accumulators(self, rng):
        groups, nvars, samples = 4, 7, 5
        x = rng.integers(0, 9, size=(160, groups, nvars)).astype(float)
        y = rng.integers(-300, 300, size=(160, samples)).astype(float)
        stacked = StackedStreamingPearson(groups, nvars, samples)
        for sl in iter_chunk_slices(160, 33):
            stacked.update(x[sl], y[sl])
        np.testing.assert_array_equal(
            stacked.finalize(), self.per_group_reference(x, y, groups, nvars)
        )

    def test_flat_and_3d_updates_agree(self, rng):
        x = rng.integers(0, 9, size=(40, 3, 4)).astype(float)
        y = rng.integers(0, 100, size=(40, 2)).astype(float)
        a = StackedStreamingPearson(3, 4, 2).update(x, y)
        b = StackedStreamingPearson(3, 4, 2).update(x.reshape(40, 12), y)
        np.testing.assert_array_equal(a.finalize(), b.finalize())

    def test_fold_sums_equals_update(self, rng):
        groups, nvars, samples = 2, 5, 3
        x = rng.integers(0, 9, size=(60, groups, nvars)).astype(float)
        y = rng.integers(0, 200, size=(60, samples)).astype(float)
        updated = StackedStreamingPearson(groups, nvars, samples).update(x, y)
        flat = x.reshape(60, -1)
        folded = StackedStreamingPearson(groups, nvars, samples).fold_sums(
            60,
            flat.sum(axis=0),
            (flat**2).sum(axis=0),
            flat.T @ y,
            y.sum(axis=0),
            np.einsum("ij,ij->j", y, y),
        )
        np.testing.assert_array_equal(folded.finalize(), updated.finalize())

    def test_merge_bit_identical(self, rng):
        x = rng.integers(0, 9, size=(100, 2, 6)).astype(float)
        y = rng.integers(0, 500, size=(100, 4)).astype(float)
        whole = StackedStreamingPearson(2, 6, 4).update(x, y)
        merged = (
            StackedStreamingPearson(2, 6, 4).update(x[:30], y[:30]).merge(
                StackedStreamingPearson(2, 6, 4).update(x[30:], y[30:])
            )
        )
        np.testing.assert_array_equal(merged.finalize(), whole.finalize())

    def test_state_round_trip(self, rng):
        x = rng.integers(0, 9, size=(50, 3, 4)).astype(float)
        y = rng.integers(0, 100, size=(50, 2)).astype(float)
        src = StackedStreamingPearson(3, 4, 2).update(x, y)
        dst = StackedStreamingPearson(3, 4, 2).load_state_arrays(
            src.state_arrays()
        )
        np.testing.assert_array_equal(dst.finalize(), src.finalize())
        assert set(src.state_arrays()) == set(
            StackedStreamingPearson.STATE_FIELDS
        )

    def test_finalize_memoized_and_read_only(self, rng):
        x = rng.integers(0, 9, size=(20, 2, 3)).astype(float)
        y = rng.integers(0, 50, size=(20, 2)).astype(float)
        acc = StackedStreamingPearson(2, 3, 2).update(x, y)
        rho = acc.finalize()
        assert acc.finalize() is rho
        assert not rho.flags.writeable
        acc.update(x, y)
        assert acc.finalize() is not rho

    def test_guards(self):
        with pytest.raises(AttackError):
            StackedStreamingPearson(0, 1, 1)
        with pytest.raises(AttackError, match="two rows"):
            StackedStreamingPearson(1, 2, 2).finalize()
        acc = StackedStreamingPearson(1, 2, 2)
        with pytest.raises(AttackError, match="rows"):
            acc.update(np.ones((3, 2)), np.ones((4, 2)))
        with pytest.raises(ReproError):
            acc.merge(StackedStreamingPearson(2, 2, 2))


class TestStreamingPearsonMemoization:
    def test_finalize_memoized_and_invalidated(self, rng):
        x = rng.integers(0, 9, size=(30, 4)).astype(float)
        y = rng.integers(0, 50, size=(30, 3)).astype(float)
        acc = StreamingPearson(4, 3).update(x, y)
        rho = acc.finalize()
        assert acc.finalize() is rho
        assert not rho.flags.writeable
        acc.update(x, y)
        assert acc.finalize() is not rho

    def test_merge_and_load_invalidate(self, rng):
        x = rng.integers(0, 9, size=(30, 4)).astype(float)
        y = rng.integers(0, 50, size=(30, 3)).astype(float)
        acc = StreamingPearson(4, 3).update(x, y)
        rho = acc.finalize()
        other = StreamingPearson(4, 3).update(x, y)
        acc.merge(other)
        assert acc.finalize() is not rho
        rho2 = acc.finalize()
        acc.load_state_arrays(other.state_arrays())
        assert acc.finalize() is not rho2
        np.testing.assert_array_equal(acc.finalize(), other.finalize())
