"""The unified run telemetry subsystem.

Covers the span recorder, deterministic cross-worker merge, manifest
hashing, the JSONL run-log schema (golden-pinned), the Chrome/Perfetto
export, and the ``repro report`` summary/diff engine including the
synthetic-slowdown regression fixture CI relies on.
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments import registry
from repro.kernels.profile import StageProfile, profile_from_timings
from repro.runtime.metrics import EngineMetrics, ShardMetrics
from repro.telemetry import (
    RUN_SCHEMA_VERSION,
    SpanRecord,
    Telemetry,
    build_manifest,
    chrome_trace_events,
    diff_runs,
    leaf_totals,
    manifest_hash,
    read_run,
    result_digest,
    summarize,
    walk_spans,
    write_run_log,
)
from repro.errors import ConfigurationError

GOLDEN = Path(__file__).parent / "golden" / "run_log_schema.json"

#: Small enough for CI, large enough for two shards per worker.
TINY_FIG5 = {
    "placements": ("P6",),
    "n_traces": 512,
    "step": 256,
    "rating_at": 256,
}


def _tiny_config(run_dir, workers=1, seed=7, **overrides):
    return registry.ExperimentConfig(
        scale="quick",
        seed=seed,
        workers=workers,
        shard_size=128,
        options=dict(TINY_FIG5, **overrides),
        run_dir=str(run_dir),
    )


@pytest.fixture(scope="module")
def tiny_runs(tmp_path_factory):
    """One tiny fig5 campaign at 1 and 2 workers, plus a sabotaged run."""
    root = tmp_path_factory.mktemp("telemetry-runs")
    registry.run("fig5", _tiny_config(root / "w1", workers=1))
    registry.run("fig5", _tiny_config(root / "w2", workers=2))
    os.environ["REPRO_INJECT_STAGE_SLEEP"] = "pdn:0.1"
    try:
        registry.run("fig5", _tiny_config(root / "slow", workers=1))
    finally:
        del os.environ["REPRO_INJECT_STAGE_SLEEP"]
    return root


# ----------------------------------------------------------------------
# Span recorder primitives.
# ----------------------------------------------------------------------


def test_telemetry_nests_and_attaches():
    telemetry = Telemetry()
    with telemetry.span("outer", kind="test") as outer:
        with telemetry.span("inner"):
            pass
        telemetry.attach(SpanRecord(name="grafted", seconds=1.5))
        telemetry.event("checkpoint", counters={"n": 3}, n_traces=3)
    assert [r.name for r in telemetry.roots] == ["outer"]
    assert [c.name for c in outer.children] == ["inner", "grafted", "checkpoint"]
    assert outer.attrs == {"kind": "test"}
    assert outer.seconds >= 0.0
    assert outer.child("checkpoint").counter("n") == 3


def test_walk_spans_and_leaf_totals():
    tree = SpanRecord(
        name="root",
        seconds=5.0,
        children=[
            SpanRecord(name="a", seconds=1.0),
            SpanRecord(
                name="b",
                seconds=3.0,
                children=[SpanRecord(name="a", seconds=2.0)],
            ),
        ],
    )
    paths = [(path, depth) for path, depth, _ in walk_spans([tree])]
    assert paths == [("root", 0), ("root/a", 1), ("root/b", 1), ("root/b/a", 2)]
    # Only leaves count: root and b are interior.
    assert leaf_totals([tree]) == {"a": 3.0}


def test_telemetry_clear():
    telemetry = Telemetry()
    with telemetry.span("x"):
        pass
    telemetry.clear()
    assert telemetry.roots == []


# ----------------------------------------------------------------------
# Satellite: throughputs report 0.0, never inf.
# ----------------------------------------------------------------------


def test_zero_second_metrics_are_finite():
    shard = ShardMetrics(shard_index=0, n_items=100, seconds=0.0)
    assert shard.items_per_second == 0.0
    assert "n/a" in shard.summary()
    engine = EngineMetrics(
        kind="collect", n_items=100, n_shards=1, workers=1,
        wall_seconds=0.0, shards=[shard],
    )
    assert engine.items_per_second == 0.0
    assert engine.parallelism == 0.0
    assert engine.stage_items_per_second() == {}
    assert "n/a" in engine.summary()


def test_zero_second_stage_stats_are_finite():
    profile = StageProfile()
    profile.add("pdn", 0.0, items=50)
    assert profile.stages["pdn"].items_per_second == 0.0


# ----------------------------------------------------------------------
# Deprecation shim for legacy timings dicts.
# ----------------------------------------------------------------------


def test_profile_from_timings_warns_and_converts():
    with pytest.warns(DeprecationWarning, match="span"):
        profile = profile_from_timings({"aes": 1.0, "pdn": 2.0})
    assert profile.stage_seconds() == {"aes": 1.0, "pdn": 2.0}


# ----------------------------------------------------------------------
# Manifest identity.
# ----------------------------------------------------------------------


def test_manifest_hash_stability():
    kwargs = dict(scale="quick", seed=3, shard_size=128, options={"n": 1})
    a = build_manifest("fig5", workers=1, **kwargs)
    b = build_manifest("fig5", workers=8, **kwargs)
    # Same configuration: identical hash on any host at any worker count
    # (workers, versions, host and git state are informational only).
    assert manifest_hash(a) == manifest_hash(b)
    assert a["config_hash"] == b["config_hash"]
    c = build_manifest("fig5", workers=1, **{**kwargs, "seed": 4})
    assert manifest_hash(a) != manifest_hash(c)
    d = build_manifest("fig3", workers=1, **kwargs)
    assert manifest_hash(a) != manifest_hash(d)


def test_manifest_records_environment():
    manifest = build_manifest(
        "fig5", scale="quick", seed=0, workers=2, shard_size=64
    )
    assert manifest["schema"] == RUN_SCHEMA_VERSION
    assert manifest["versions"]["python"]
    assert manifest["versions"]["numpy"]
    assert manifest["host"]["cpu_count"] >= 1
    assert manifest["seed_lineage"]["entropy"] == 0


# ----------------------------------------------------------------------
# Tentpole: the merged span tree is deterministic across worker counts.
# ----------------------------------------------------------------------


def _structure(run_dir):
    """The worker-count-invariant shape of a run log's span stream."""
    record = read_run(run_dir)
    shape = []
    for event in record.events:
        if event["type"] == "span":
            # Everything but the worker count is workload identity.
            attrs = {
                k: v for k, v in event["attrs"].items() if k != "workers"
            }
            shape.append(("span", event["path"], event["leaf"], attrs))
        elif event["type"] == "checkpoint":
            shape.append(("checkpoint", event["path"], event["n_traces"]))
    return shape


def test_span_merge_deterministic_across_worker_counts(tiny_runs):
    w1 = _structure(tiny_runs / "w1")
    w2 = _structure(tiny_runs / "w2")
    assert w1 == w2
    # Shard spans appear in shard-index order regardless of which
    # worker finished first.
    shard_indices = [
        event["attrs"]["shard"]
        for event in read_run(tiny_runs / "w2").spans
        if event["name"] == "shard"
    ]
    assert shard_indices == sorted(shard_indices)
    assert len(shard_indices) >= 2


def test_results_bit_identical_across_worker_counts(tiny_runs):
    digest = [
        read_run(tiny_runs / label).one("metrics")["result_digest"]
        for label in ("w1", "w2")
    ]
    assert digest[0] == digest[1]
    hashes = [
        read_run(tiny_runs / label).manifest_hash for label in ("w1", "w2")
    ]
    assert hashes[0] == hashes[1]


# ----------------------------------------------------------------------
# Golden JSONL schema.
# ----------------------------------------------------------------------


def test_run_log_matches_golden_schema(tiny_runs, update_goldens):
    golden = json.loads(GOLDEN.read_text())
    assert golden["schema"] == RUN_SCHEMA_VERSION
    record = read_run(tiny_runs / "w1")
    seen = set()
    for event in record.events:
        kind = event["type"]
        assert kind in golden["events"], f"unknown event type {kind!r}"
        missing = [f for f in golden["events"][kind] if f not in event]
        assert not missing, f"{kind} event missing fields: {missing}"
        seen.add(kind)
    assert seen == set(golden["events"]), "not every event type was emitted"
    missing = [f for f in golden["manifest"] if f not in record.manifest]
    assert not missing, f"manifest missing fields: {missing}"


def test_read_run_rejects_newer_schema(tmp_path):
    write_run_log(
        tmp_path,
        manifest=build_manifest(
            "fig5", scale="quick", seed=0, workers=1, shard_size=64
        ),
        roots=[],
        metrics={},
    )
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    manifest["schema"] = RUN_SCHEMA_VERSION + 1
    (tmp_path / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(ConfigurationError, match="newer"):
        read_run(tmp_path)


def test_read_run_requires_log(tmp_path):
    with pytest.raises(ConfigurationError, match="no run log"):
        read_run(tmp_path / "nowhere")


# ----------------------------------------------------------------------
# Perfetto export.
# ----------------------------------------------------------------------


def test_chrome_trace_events(tiny_runs):
    trace = json.loads((tiny_runs / "w1" / "trace.json").read_text())
    events = trace["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert meta and spans
    assert all(e["name"] == "process_name" for e in meta)
    assert min(e["ts"] for e in spans) == 0  # re-based to run start
    assert all(e["dur"] >= 0 for e in spans)
    by_name = {e["name"] for e in spans}
    assert "run.fig5" in by_name
    assert "shard" in by_name


def test_chrome_trace_events_roundtrip_args():
    root = SpanRecord(
        name="root", start=100.0, seconds=1.0,
        attrs={"shard": 3}, counters={"items": 10},
    )
    events = chrome_trace_events([root])
    span = next(e for e in events if e["ph"] == "X")
    assert span["args"]["shard"] == 3
    assert span["args"]["items"] == 10


# ----------------------------------------------------------------------
# repro report: summary and regression diff.
# ----------------------------------------------------------------------


def test_summarize_run(tiny_runs):
    summary = summarize(tiny_runs / "w1")
    assert summary.experiment == "fig5"
    assert summary.workers == 1
    assert summary.n_items == TINY_FIG5["n_traces"]
    assert summary.stage_seconds  # aes/pdn/sensor/accumulate leaves
    assert "accumulate" in summary.stage_seconds
    assert summary.result_digest == result_digest(summary.metrics)
    assert any("wall" in line for line in summary.lines())


def test_diff_identical_runs_is_ok(tiny_runs):
    # A run diffed against itself is the exact-fixed-point case.
    report = diff_runs(tiny_runs / "w1", tiny_runs / "w1")
    assert report.config_match
    assert report.ok
    assert any("OK" in line for line in report.lines())
    # Across worker counts the timings jitter (tiny CI-sized runs), but
    # with timing thresholds relaxed the runs must compare clean: same
    # config hash, same result digest.
    report = diff_runs(
        tiny_runs / "w1", tiny_runs / "w2", threshold=100.0, min_seconds=100.0
    )
    assert report.config_match
    assert report.ok
    digest = next(
        v for v in report.verdicts if v.metric == "result_digest"
    )
    assert digest.kind == "ok"


def test_diff_flags_injected_stage_slowdown(tiny_runs):
    report = diff_runs(
        tiny_runs / "w1", tiny_runs / "slow", min_seconds=0.05
    )
    assert not report.ok
    flagged = {v.metric for v in report.regressions}
    assert "stage:pdn" in flagged
    # The sleep slows the stage but must not change the science.
    digest = next(
        v for v in report.verdicts if v.metric == "result_digest"
    )
    assert digest.kind == "ok"
    assert any("REGRESSION" in line for line in report.lines())


def test_diff_differing_results_is_fatal(tmp_path):
    manifest = build_manifest(
        "fig5", scale="quick", seed=0, workers=1, shard_size=64
    )
    roots = [SpanRecord(name="run.fig5", seconds=1.0)]
    write_run_log(
        tmp_path / "a", manifest=manifest, roots=roots,
        metrics={"rank": 1.0}, wall_seconds=1.0, n_items=10,
    )
    write_run_log(
        tmp_path / "b", manifest=manifest, roots=roots,
        metrics={"rank": 2.0}, wall_seconds=1.0, n_items=10,
    )
    report = diff_runs(tmp_path / "a", tmp_path / "b")
    assert not report.ok
    assert any(v.kind == "differs" for v in report.regressions)


def test_diff_different_configs_never_checks_digest(tmp_path):
    roots = [SpanRecord(name="run.fig5", seconds=1.0)]
    for seed, label in ((0, "a"), (1, "b")):
        write_run_log(
            tmp_path / label,
            manifest=build_manifest(
                "fig5", scale="quick", seed=seed, workers=1, shard_size=64
            ),
            roots=roots,
            metrics={"rank": float(seed)},
            wall_seconds=1.0,
            n_items=10,
        )
    report = diff_runs(tmp_path / "a", tmp_path / "b")
    assert not report.config_match
    assert report.ok  # different campaigns: timing context only
