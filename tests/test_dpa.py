"""Tests for the classic DPA attack."""

import numpy as np
import pytest

from repro.attacks.cpa import CPAAttack
from repro.attacks.dpa import DPAAttack
from repro.errors import AttackError
from repro.victims.aes.core import AES128
from repro.victims.aes.key_schedule import expand_key
from repro.victims.aes.sbox import HW8

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def _leaky_traces(n, noise=1.0, seed=0):
    rng = np.random.default_rng(seed)
    aes = AES128(KEY)
    pts = rng.integers(0, 256, (n, 16), dtype=np.uint8)
    states = aes.round_states(pts)
    hd = HW8[states[:, 9] ^ states[:, 10]].sum(axis=1).astype(float)
    traces = np.column_stack(
        [rng.normal(0, 1, n), -hd + rng.normal(0, noise, n)]
    )
    return traces, states[:, 10], aes


class TestValidation:
    def test_bad_params_rejected(self):
        with pytest.raises(AttackError):
            DPAAttack(0)
        with pytest.raises(AttackError):
            DPAAttack(5, selection_bit=8)

    def test_shape_mismatch_rejected(self):
        attack = DPAAttack(3)
        with pytest.raises(AttackError):
            attack.add_traces(np.zeros((2, 4)), np.zeros((2, 16), dtype=np.uint8))

    def test_empty_evaluation_rejected(self):
        with pytest.raises(AttackError):
            DPAAttack(3).difference_traces()


class TestRecovery:
    def test_recovers_key_on_clean_leakage(self):
        traces, cts, aes = _leaky_traces(6000, noise=1.0)
        attack = DPAAttack(2)
        attack.add_traces(traces, cts)
        np.testing.assert_array_equal(attack.best_guesses(), aes.round_keys[10])
        assert bytes(attack.recover_master_key()) == KEY

    def test_difference_spikes_at_leaky_sample(self):
        traces, cts, aes = _leaky_traces(6000, noise=1.0)
        attack = DPAAttack(2)
        attack.add_traces(traces, cts)
        diff = attack.difference_traces()
        k10 = aes.round_keys[10]
        assert np.abs(diff[0, k10[0]]).argmax() == 1

    def test_incremental_equals_batch(self):
        traces, cts, _aes = _leaky_traces(2000)
        a = DPAAttack(2)
        a.add_traces(traces, cts)
        b = DPAAttack(2)
        b.add_traces(traces[:700], cts[:700])
        b.add_traces(traces[700:], cts[700:])
        np.testing.assert_allclose(
            a.difference_traces(), b.difference_traces(), atol=1e-12
        )

    def test_flat_on_pure_noise(self):
        rng = np.random.default_rng(5)
        attack = DPAAttack(2)
        attack.add_traces(
            rng.normal(0, 1, (4000, 2)),
            rng.integers(0, 256, (4000, 16), dtype=np.uint8),
        )
        peaks = attack.peak_differences()
        # No guess dominates: spread within a small factor.
        assert peaks.max() < 4 * np.median(peaks)

    def test_different_selection_bits_agree(self):
        traces, cts, aes = _leaky_traces(8000, noise=1.0, seed=3)
        for bit in (0, 4, 7):
            attack = DPAAttack(2, selection_bit=bit)
            attack.add_traces(traces, cts)
            correct = np.sum(attack.best_guesses() == aes.round_keys[10])
            assert correct >= 14


class TestCpaComparison:
    def test_cpa_beats_dpa_at_fixed_budget(self):
        """The full-byte HD statistic extracts more per trace than a
        single selection bit: at a budget where CPA is fully converged,
        DPA should be at most as good."""
        traces, cts, aes = _leaky_traces(1500, noise=4.0, seed=7)
        k10 = aes.round_keys[10]

        cpa = CPAAttack(2)
        cpa.add_traces(traces, cts)
        cpa_correct = int(np.sum(cpa.best_guesses() == k10))

        dpa = DPAAttack(2)
        dpa.add_traces(traces, cts)
        dpa_correct = int(np.sum(dpa.best_guesses() == k10))

        assert cpa_correct == 16
        assert dpa_correct <= cpa_correct
