"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig3", "table1", "fig7", "defense"):
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_parser_help_mentions_full_scale(self):
        parser = build_parser()
        assert "REPRO_FULL" in parser.description

    def test_runs_defense_experiment(self, capsys):
        assert main(["defense"]) == 0
        out = capsys.readouterr().out
        assert "LeakyDSP" in out
