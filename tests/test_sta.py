"""Tests for static timing analysis and the implementation flow."""

import pytest

from repro.core.leaky_dsp import LeakyDSP
from repro.fpga.device import xc7a35t
from repro.fpga.flow import ImplementationFlow
from repro.fpga.netlist import Netlist
from repro.fpga.placement import Placer
from repro.fpga.primitives import DSP48E1, FDRE, LUT
from repro.sensors.ro import RingOscillatorSensor
from repro.sensors.tdc import TDC
from repro.timing.paths import PATH_DELAYS, ROUTING_DELAY_BASE
from repro.timing.sampling import ClockSpec
from repro.timing.sta import SETUP_TIME, TimingAnalyzer


def _pipeline_netlist(n_luts: int) -> Netlist:
    """FF -> n LUTs -> FF."""
    nl = Netlist("pipe")
    nl.add_cell(FDRE("src"))
    nl.add_cell(FDRE("dst"))
    prev = ("src", "Q")
    for i in range(n_luts):
        nl.add_cell(LUT.inverter(f"l{i}"))
        nl.connect(f"n{i}", prev, [(f"l{i}", "I0")])
        prev = (f"l{i}", "O")
    nl.connect("n_end", prev, [("dst", "D")])
    return nl


class TestAnalyzer:
    def test_single_lut_path_delay(self):
        nl = _pipeline_netlist(1)
        report = TimingAnalyzer(nl).analyze(ClockSpec(100e6))
        path = report.paths[0]
        expected = 2 * ROUTING_DELAY_BASE + PATH_DELAYS["LUT"]
        assert path.delay == pytest.approx(expected)
        assert path.start == "src"
        assert path.end == "dst"

    def test_slack_formula(self):
        nl = _pipeline_netlist(1)
        clock = ClockSpec(100e6)
        report = TimingAnalyzer(nl).analyze(clock)
        p = report.paths[0]
        assert p.slack == pytest.approx(clock.period - SETUP_TIME - p.delay)

    def test_fast_clock_fails_long_pipe(self):
        nl = _pipeline_netlist(40)  # ~6.6 ns of LUT+wire delay
        ok = TimingAnalyzer(nl).analyze(ClockSpec(50e6))
        bad = TimingAnalyzer(nl).analyze(ClockSpec(500e6))
        assert ok.passes
        assert not bad.passes
        assert bad.failing_paths

    def test_longest_path_wins(self):
        """Two parallel paths: STA must report the slower one."""
        nl = Netlist("par")
        nl.add_cell(FDRE("src"))
        nl.add_cell(FDRE("dst"))
        nl.add_cell(LUT.inverter("short"))
        for i in range(5):
            nl.add_cell(LUT.inverter(f"long{i}"))
        nl.connect("n_s", ("src", "Q"), [("short", "I0"), ("long0", "I0")])
        for i in range(4):
            nl.connect(f"n_l{i}", (f"long{i}", "O"), [(f"long{i+1}", "I0")])
        nl.connect("n_j", ("long4", "O"), [("dst", "D")])
        nl.connect("n_k", ("short", "O"), [("dst", "D2")])
        report = TimingAnalyzer(nl).analyze(ClockSpec(100e6))
        expected_long = 6 * ROUTING_DELAY_BASE + 5 * PATH_DELAYS["LUT"]
        assert report.paths[0].delay == pytest.approx(expected_long)

    def test_comb_loop_reported(self):
        ro = RingOscillatorSensor(name="ro")
        report = TimingAnalyzer(ro.netlist()).analyze(ClockSpec(100e6))
        assert report.loops
        assert not report.passes

    def test_registered_dsp_is_endpoint(self):
        nl = Netlist("d")
        nl.add_cell(FDRE("src"))
        nl.add_cell(DSP48E1.leakydsp_config("dsp", last=True))
        nl.connect("n0", ("src", "Q"), [("dsp", "A")])
        report = TimingAnalyzer(nl).analyze(ClockSpec(100e6))
        assert report.paths[0].end == "dsp"

    def test_empty_design_passes(self):
        report = TimingAnalyzer(Netlist("empty")).analyze(ClockSpec(100e6))
        assert report.passes
        assert report.worst_slack == float("inf")


class TestSensorTiming:
    def test_leakydsp_violates_honest_clock(self):
        sensor = LeakyDSP(seed=1)
        report = TimingAnalyzer(sensor.netlist()).analyze(ClockSpec(300e6))
        assert not report.passes
        assert report.worst_slack < -3e-9

    def test_leakydsp_passes_declared_slow_clock(self):
        """The paper's bypass: declare a slow clock, pass the check."""
        sensor = LeakyDSP(seed=1)
        report = TimingAnalyzer(sensor.netlist()).analyze(ClockSpec(20e6))
        assert report.passes

    def test_tdc_violates_honest_clock(self):
        sensor = TDC(seed=1)
        report = TimingAnalyzer(sensor.netlist()).analyze(ClockSpec(300e6))
        assert not report.passes


class TestFlow:
    def test_full_flow_artifacts(self):
        device = xc7a35t()
        sensor = LeakyDSP(device=device, seed=1)
        result = ImplementationFlow(device).run(
            sensor.netlist(), clock=ClockSpec(300e6)
        )
        assert len(result.placement) == len(sensor.netlist().cells)
        assert result.routing.total_wirelength() > 0
        assert len(result.bitstream.frames) == len(sensor.netlist().cells)
        assert result.timing is not None
        assert not result.timing_met

    def test_flow_without_clock_skips_timing(self):
        device = xc7a35t()
        sensor = LeakyDSP(device=device, seed=1)
        result = ImplementationFlow(device).run(sensor.netlist())
        assert result.timing is None
        assert result.timing_met  # vacuously

    def test_flow_log_stages(self):
        device = xc7a35t()
        sensor = LeakyDSP(device=device, seed=1)
        result = ImplementationFlow(device).run(
            sensor.netlist(), clock=ClockSpec(300e6)
        )
        stages = " ".join(result.log)
        for word in ("synth", "place", "route", "timing", "bitgen"):
            assert word in stages

    def test_shared_placer_multi_tenant(self):
        device = xc7a35t()
        placer = Placer(device)
        flow = ImplementationFlow(device, placer=placer)
        a = flow.run(LeakyDSP(device=device, seed=1, name="t1").netlist())
        b = flow.run(LeakyDSP(device=device, seed=2, name="t2").netlist())
        sites_a = {s.name for s in a.placement.assignment.values()}
        sites_b = {s.name for s in b.placement.assignment.values()}
        assert not sites_a & sites_b
