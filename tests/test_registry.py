"""Tests for the uniform experiment API (registry + protocol entry)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import pdn_validation, registry
from repro.runtime import Engine

EXPECTED_NAMES = {
    "ablation-calib",
    "ablation-chain",
    "defense",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "pdn-validation",
    "sensor-zoo",
    "table1",
}


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(registry.names()) == EXPECTED_NAMES

    def test_specs_have_titles_and_renderers(self):
        for name in registry.names():
            spec = registry.get(name)
            assert spec.name == name
            assert spec.title
            assert callable(spec.runner)
            assert callable(spec.renderer)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            registry.get("frobnicate")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            registry.ExperimentConfig(scale="huge")

    def test_run_returns_uniform_result(self):
        config = registry.ExperimentConfig(scale="quick", seed=3)
        result = registry.run("pdn-validation", config)
        assert isinstance(result, registry.ExperimentResult)
        assert result.name == "pdn-validation"
        assert result.payload is not None
        assert result.seconds > 0
        assert result.metadata["scale"] == "quick"
        assert result.metadata["seed"] == 3
        assert result.metadata["workers"] == 1
        assert "near_field_error" in result.metrics
        assert any("kernel fit" in line for line in result.lines())

    def test_options_override_scale_defaults(self):
        config = registry.ExperimentConfig(scale="quick", options={"nx": 13, "ny": 13})
        result = registry.run("pdn-validation", config)
        assert result.metadata["options"] == {"nx": 13, "ny": 13}

    def test_params_merging(self):
        config = registry.ExperimentConfig(scale="quick", options={"b": 9})
        assert config.params(quick={"a": 1, "b": 2}, paper={}) == {"a": 1, "b": 9}
        config = registry.ExperimentConfig(scale="paper", options={})
        assert config.params(quick={"a": 1}, paper={"a": 5}) == {"a": 5}

    def test_spawn_seeds_deterministic(self):
        a = registry.ExperimentConfig(seed=4).spawn_seeds(3)
        b = registry.ExperimentConfig(seed=4).spawn_seeds(3)
        assert [s.generate_state(1)[0] for s in a] == [
            s.generate_state(1)[0] for s in b
        ]

    def test_explicit_engine_used(self):
        engine = Engine(workers=1, shard_size=128)
        result = registry.run(
            "pdn-validation", registry.ExperimentConfig(scale="quick"), engine
        )
        assert result.metadata["workers"] == 1


class TestProtocolEntry:
    def test_config_dispatches_through_registry(self):
        result = pdn_validation.run(registry.ExperimentConfig(scale="quick"))
        assert isinstance(result, registry.ExperimentResult)
        assert result.name == "pdn-validation"

    def test_legacy_kwargs_warn_and_return_payload(self):
        with pytest.warns(DeprecationWarning):
            result = pdn_validation.run(nx=13, ny=13)
        assert isinstance(result, pdn_validation.PdnValidationResult)

    def test_bare_call_warns(self):
        from repro.experiments import defense_study

        with pytest.warns(DeprecationWarning):
            result = defense_study.run(fence_sizes=(500,))
        assert result.fence[0].n_instances == 500

    def test_config_plus_kwargs_rejected(self):
        with pytest.raises(TypeError):
            pdn_validation.run(registry.ExperimentConfig(), nx=13)

    def test_positional_non_config_rejected(self):
        with pytest.raises(TypeError):
            pdn_validation.run(17)

    def test_quick_scale_deterministic_in_seed(self):
        from repro.experiments import fig3_sensitivity

        cfg = lambda: registry.ExperimentConfig(scale="quick", seed=8, shard_size=64)
        a = fig3_sensitivity.run(cfg())
        b = fig3_sensitivity.run(cfg())
        assert a.metrics == b.metrics

    def test_workers_do_not_change_results(self):
        from repro.experiments import fig3_sensitivity

        serial = fig3_sensitivity.run(
            registry.ExperimentConfig(scale="quick", seed=8, workers=1, shard_size=64)
        )
        pooled = fig3_sensitivity.run(
            registry.ExperimentConfig(scale="quick", seed=8, workers=2, shard_size=64)
        )
        for name in serial.payload.curves:
            assert (
                serial.payload.curves[name].mean_readouts
                == pooled.payload.curves[name].mean_readouts
            )
