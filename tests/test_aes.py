"""Tests for the AES-128 core: FIPS-197 vectors, structure and the
key schedule (forward and inverse)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.victims.aes.core import (
    AES128,
    INV_SHIFT_ROWS_IDX,
    SHIFT_ROWS_IDX,
    mix_columns,
    shift_rows,
    sub_bytes,
)
from repro.victims.aes.key_schedule import expand_key, invert_key_schedule
from repro.victims.aes.sbox import (
    HW8,
    INV_SBOX,
    SBOX,
    XTIME,
    gf_inverse,
    gf_mul,
)

#: FIPS-197 Appendix B example.
FIPS_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
FIPS_PT = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
FIPS_CT = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")

#: FIPS-197 Appendix C.1 (all-zero-ish example vectors).
C1_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
C1_PT = bytes.fromhex("00112233445566778899aabbccddeeff")
C1_CT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")


class TestGF:
    def test_known_products(self):
        assert gf_mul(0x57, 0x83) == 0xC1  # FIPS-197 example
        assert gf_mul(0x57, 0x13) == 0xFE

    def test_identity(self):
        for x in (1, 0x53, 0xFF):
            assert gf_mul(x, 1) == x

    def test_inverse(self):
        for x in range(1, 256):
            assert gf_mul(x, gf_inverse(x)) == 1

    def test_zero_inverse_is_zero(self):
        assert gf_inverse(0) == 0

    def test_xtime_table(self):
        assert XTIME[0x57] == 0xAE
        assert XTIME[0xAE] == 0x47


class TestSbox:
    def test_fips_values(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_is_permutation(self):
        assert len(set(SBOX.tolist())) == 256

    def test_inverse_sbox(self):
        x = np.arange(256, dtype=np.uint8)
        np.testing.assert_array_equal(INV_SBOX[SBOX[x]], x)

    def test_no_fixed_points(self):
        assert not np.any(SBOX == np.arange(256))

    def test_hw_table(self):
        assert HW8[0] == 0
        assert HW8[0xFF] == 8
        assert HW8[0b1010_1010] == 4


class TestRoundFunctions:
    def test_shift_rows_is_permutation(self):
        assert sorted(SHIFT_ROWS_IDX.tolist()) == list(range(16))

    def test_inv_shift_rows(self):
        state = np.arange(16, dtype=np.uint8)[None, :]
        np.testing.assert_array_equal(
            shift_rows(state)[0][INV_SHIFT_ROWS_IDX.argsort()].shape, (16,)
        )
        roundtrip = shift_rows(state)[0][np.argsort(SHIFT_ROWS_IDX)]
        np.testing.assert_array_equal(roundtrip, state[0])

    def test_row0_unmoved(self):
        state = np.arange(16, dtype=np.uint8)[None, :]
        out = shift_rows(state)[0]
        for c in range(4):
            assert out[4 * c + 0] in (0, 4, 8, 12)

    def test_mix_columns_fips_example(self):
        # FIPS-197 Section 5.1.3 example column.
        col = np.array([0xD4, 0xBF, 0x5D, 0x30], dtype=np.uint8)
        state = np.tile(col, 4)[None, :]
        out = mix_columns(state)[0][:4]
        np.testing.assert_array_equal(
            out, np.array([0x04, 0x66, 0x81, 0xE5], dtype=np.uint8)
        )

    def test_sub_bytes_vectorized(self):
        state = np.zeros((3, 16), dtype=np.uint8)
        np.testing.assert_array_equal(sub_bytes(state), np.full((3, 16), 0x63))


class TestEncryption:
    def test_fips_appendix_b(self):
        aes = AES128(FIPS_KEY)
        assert aes.encrypt(FIPS_PT) == FIPS_CT

    def test_fips_appendix_c1(self):
        aes = AES128(C1_KEY)
        assert aes.encrypt(C1_PT) == C1_CT

    def test_batch_matches_scalar(self):
        aes = AES128(FIPS_KEY)
        rng = np.random.default_rng(0)
        pts = rng.integers(0, 256, (20, 16), dtype=np.uint8)
        batch = aes.encrypt_blocks(pts)
        for i in range(20):
            assert bytes(batch[i]) == aes.encrypt(pts[i])

    def test_round_states_ends_in_ciphertext(self):
        aes = AES128(FIPS_KEY)
        states = aes.round_states(FIPS_PT)
        assert bytes(states[0, 10]) == FIPS_CT

    def test_round_states_start_is_whitened(self):
        aes = AES128(FIPS_KEY)
        states = aes.round_states(FIPS_PT)
        expected = np.frombuffer(FIPS_PT, dtype=np.uint8) ^ aes.round_keys[0]
        np.testing.assert_array_equal(states[0, 0], expected)

    def test_round_states_shape(self):
        aes = AES128(FIPS_KEY)
        assert aes.round_states(np.zeros((5, 16), dtype=np.uint8)).shape == (5, 11, 16)

    def test_bad_block_shape_rejected(self):
        aes = AES128(FIPS_KEY)
        with pytest.raises(ConfigurationError):
            aes.encrypt_blocks(np.zeros((2, 15), dtype=np.uint8))

    def test_last_round_shiftrows_identity(self):
        aes = AES128(FIPS_KEY)
        pts = np.random.default_rng(1).integers(0, 256, (8, 16), dtype=np.uint8)
        states = aes.round_states(pts)
        s9, ct = states[:, 9], states[:, 10]
        predicted = SBOX[s9[:, SHIFT_ROWS_IDX]] ^ aes.round_keys[10]
        np.testing.assert_array_equal(predicted, ct)


class TestDecryption:
    def test_fips_appendix_b_roundtrip(self):
        aes = AES128(FIPS_KEY)
        assert aes.decrypt(FIPS_CT) == FIPS_PT

    def test_fips_appendix_c1(self):
        aes = AES128(C1_KEY)
        assert aes.decrypt(C1_CT) == C1_PT

    def test_roundtrip_random_blocks(self):
        aes = AES128(FIPS_KEY)
        rng = np.random.default_rng(7)
        pts = rng.integers(0, 256, (50, 16), dtype=np.uint8)
        np.testing.assert_array_equal(
            aes.decrypt_blocks(aes.encrypt_blocks(pts)), pts
        )

    def test_decrypt_batch_matches_scalar(self):
        aes = AES128(C1_KEY)
        rng = np.random.default_rng(8)
        cts = rng.integers(0, 256, (10, 16), dtype=np.uint8)
        batch = aes.decrypt_blocks(cts)
        for i in range(10):
            assert bytes(batch[i]) == aes.decrypt(cts[i])

    def test_inv_mix_columns_inverts(self):
        from repro.victims.aes.core import inv_mix_columns

        rng = np.random.default_rng(9)
        state = rng.integers(0, 256, (5, 16), dtype=np.uint8)
        np.testing.assert_array_equal(inv_mix_columns(mix_columns(state)), state)

    def test_inv_shift_rows_inverts(self):
        from repro.victims.aes.core import inv_shift_rows

        state = np.arange(16, dtype=np.uint8)[None, :]
        np.testing.assert_array_equal(inv_shift_rows(shift_rows(state)), state)

    def test_inv_sub_bytes_inverts(self):
        from repro.victims.aes.core import inv_sub_bytes

        state = np.arange(16, dtype=np.uint8)[None, :]
        np.testing.assert_array_equal(inv_sub_bytes(sub_bytes(state)), state)


class TestKeySchedule:
    def test_fips_round_keys(self):
        keys = expand_key(FIPS_KEY)
        # FIPS-197 Appendix A.1: w4..w7 of the expanded key.
        assert bytes(keys[1][:4]) == bytes.fromhex("a0fafe17")
        # Final round key (w40..w43).
        assert bytes(keys[10]) == bytes.fromhex("d014f9a8c9ee2589e13f0cc8b6630ca6")

    def test_shape(self):
        assert expand_key(FIPS_KEY).shape == (11, 16)

    def test_bad_key_length_rejected(self):
        with pytest.raises(ConfigurationError):
            expand_key(b"short")

    def test_invert_from_last_round(self):
        keys = expand_key(FIPS_KEY)
        master = invert_key_schedule(keys[10], round_index=10)
        assert bytes(master) == FIPS_KEY

    def test_invert_from_middle_round(self):
        keys = expand_key(FIPS_KEY)
        master = invert_key_schedule(keys[4], round_index=4)
        assert bytes(master) == FIPS_KEY

    def test_invert_round_zero_is_identity(self):
        master = invert_key_schedule(np.frombuffer(FIPS_KEY, np.uint8), 0)
        assert bytes(master) == FIPS_KEY

    def test_invert_random_keys_roundtrip(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            key = rng.integers(0, 256, 16, dtype=np.uint8)
            k10 = expand_key(key)[10]
            np.testing.assert_array_equal(invert_key_schedule(k10), key)

    def test_bad_round_index_rejected(self):
        with pytest.raises(ConfigurationError):
            invert_key_schedule(np.zeros(16, dtype=np.uint8), 11)
