"""Golden-file regression tests: seeded end-to-end runs pinned to
committed JSON outputs.

These catch *silent numerical drift* — a refactor that keeps every unit
test green but shifts the statistics the figures are built from.  Each
test runs a scaled-down but fully end-to-end campaign with fixed seeds
and compares against ``tests/golden/<name>.json`` to 1e-9.

To regenerate after an intentional change::

    PYTHONPATH=src python -m pytest tests/test_golden_regression.py --update-goldens

then review and commit the JSON diff.
"""

import json
import math
from pathlib import Path

import pytest

from repro.runtime import Engine

GOLDEN_DIR = Path(__file__).parent / "golden"

REL_TOL = 1e-9
ABS_TOL = 1e-9


def _diff(path, expected, actual, out):
    """Collect human-readable mismatches between two JSON-ish values."""
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            if key not in expected:
                out.append(f"{path}.{key}: unexpected new key")
            elif key not in actual:
                out.append(f"{path}.{key}: missing from current output")
            else:
                _diff(f"{path}.{key}", expected[key], actual[key], out)
    elif isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            out.append(
                f"{path}: length {len(actual)} != golden {len(expected)}"
            )
            return
        for i, (e, a) in enumerate(zip(expected, actual)):
            _diff(f"{path}[{i}]", e, a, out)
    elif isinstance(expected, bool) or isinstance(actual, bool):
        if expected is not actual:
            out.append(f"{path}: {actual!r} != golden {expected!r}")
    elif isinstance(expected, (int, float)) and isinstance(actual, (int, float)):
        if not math.isclose(expected, actual, rel_tol=REL_TOL, abs_tol=ABS_TOL):
            out.append(
                f"{path}: {actual!r} != golden {expected!r} "
                f"(|delta| = {abs(actual - expected):.3e})"
            )
    elif expected != actual:
        out.append(f"{path}: {actual!r} != golden {expected!r}")


def check_golden(name, payload, update):
    """Compare ``payload`` against ``tests/golden/<name>.json``."""
    path = GOLDEN_DIR / f"{name}.json"
    if update:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return
    if not path.exists():
        pytest.fail(
            f"golden file {path} is missing; generate it with "
            "pytest --update-goldens and commit it"
        )
    expected = json.loads(path.read_text())
    mismatches = []
    _diff(name, expected, payload, mismatches)
    if mismatches:
        shown = "\n  ".join(mismatches[:20])
        more = len(mismatches) - 20
        tail = f"\n  ... and {more} more" if more > 0 else ""
        pytest.fail(
            f"output drifted from golden {path.name} "
            f"({len(mismatches)} mismatches):\n  {shown}{tail}\n"
            "If the change is intentional, regenerate with "
            "pytest --update-goldens and commit the JSON diff."
        )


class TestFig3Golden:
    def test_sensitivity_statistics(self, update_goldens):
        from repro.experiments.fig3_sensitivity import run_fig3

        result = run_fig3(
            n_instances=2000,
            n_groups=8,
            n_readouts=250,
            seed=7,
            rng=17,
            engine=Engine(workers=1, shard_size=64),
        )
        payload = {
            sensor: {
                "levels": curve.levels,
                "mean_readouts": curve.mean_readouts,
                "pearson_r": curve.pearson_r,
                "regression_coefficient": curve.regression_coefficient,
            }
            for sensor, curve in result.curves.items()
        }
        check_golden("fig3_sensitivity", payload, update_goldens)


class TestFig5Golden:
    def test_streamed_key_rank_curve(self, update_goldens):
        from repro.experiments.table1_traces import streamed_placement_curve

        engine = Engine(workers=1, shard_size=1024)
        curve, attack = streamed_placement_curve(
            engine, "P6", 4000, 1000, "LeakyDSP", rng=3, chunk_size=512
        )
        payload = {
            "n_traces": attack.n_traces,
            "points": [
                {
                    "n_traces": p.n_traces,
                    "log2_lower": p.log2_lower,
                    "log2_upper": p.log2_upper,
                    "recovered": p.recovered,
                }
                for p in curve.points
            ],
        }
        check_golden("fig5_keyrank_stream", payload, update_goldens)


class TestTvlaGolden:
    def test_t_values(self, update_goldens):
        from repro.analysis.tvla import assess_aes_leakage
        from repro.experiments.table1_traces import placement_acquisition

        acq = placement_acquisition("P6")
        result = assess_aes_leakage(
            acq, bytes(range(16)), n_traces_per_class=300, rng=5
        )
        payload = {
            "t_statistics": [float(t) for t in result.t_statistics],
            "max_abs_t": result.max_abs_t,
            "leaks": bool(result.leaks),
            "n_leaky_samples": int(result.leaky_samples.size),
        }
        check_golden("tvla_t_values", payload, update_goldens)
