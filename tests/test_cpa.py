"""Tests for the CPA engine: hypothesis table, incremental equivalence,
synthetic-leakage key recovery."""

import numpy as np
import pytest

from repro.attacks.cpa import CPAAttack, hypothesis_table
from repro.errors import AttackError
from repro.victims.aes.core import AES128, SHIFT_ROWS_IDX
from repro.victims.aes.key_schedule import expand_key
from repro.victims.aes.sbox import HW8, INV_SBOX

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def synthetic_traces(n, key=KEY, noise=2.0, seed=0):
    """Traces whose single sample leaks the true last-round register HD
    (plus Gaussian noise) — ground truth for attack correctness."""
    rng = np.random.default_rng(seed)
    aes = AES128(key)
    pts = rng.integers(0, 256, (n, 16), dtype=np.uint8)
    states = aes.round_states(pts)
    hd = HW8[states[:, 9] ^ states[:, 10]].sum(axis=1).astype(float)
    leak = -hd + rng.normal(0, noise, n)
    traces = np.column_stack([rng.normal(0, 1, n), leak, rng.normal(0, 1, n)])
    return traces, states[:, 10], aes


class TestHypothesisTable:
    def test_shape_and_dtype(self):
        t = hypothesis_table()
        assert t.shape == (256, 256, 256)
        assert t.dtype == np.uint8

    def test_cached(self):
        assert hypothesis_table() is hypothesis_table()

    def test_values(self):
        t = hypothesis_table()
        g, cj, cb = 0x3A, 0x7F, 0x12
        expected = HW8[INV_SBOX[cj ^ g] ^ cb]
        assert t[g, cj, cb] == expected

    def test_range(self):
        t = hypothesis_table()
        assert t.max() == 8 and t.min() == 0


class TestValidation:
    def test_bad_sample_count(self):
        with pytest.raises(AttackError):
            CPAAttack(0)

    def test_bad_window(self):
        with pytest.raises(AttackError):
            CPAAttack(10, sample_window=(5, 20))
        with pytest.raises(AttackError):
            CPAAttack(10, sample_window=(7, 7))

    def test_trace_shape_mismatch(self):
        attack = CPAAttack(5)
        with pytest.raises(AttackError):
            attack.add_traces(np.zeros((3, 4)), np.zeros((3, 16), dtype=np.uint8))

    def test_ciphertext_shape_mismatch(self):
        attack = CPAAttack(5)
        with pytest.raises(AttackError):
            attack.add_traces(np.zeros((3, 5)), np.zeros((2, 16), dtype=np.uint8))

    def test_correlate_needs_traces(self):
        with pytest.raises(AttackError):
            CPAAttack(5).correlations()


class TestRecovery:
    def test_recovers_last_round_key(self):
        traces, cts, aes = synthetic_traces(3000)
        attack = CPAAttack(3)
        attack.add_traces(traces, cts)
        np.testing.assert_array_equal(attack.best_guesses(), aes.round_keys[10])

    def test_recovers_master_key(self):
        traces, cts, aes = synthetic_traces(3000)
        attack = CPAAttack(3)
        attack.add_traces(traces, cts)
        assert bytes(attack.recover_master_key()) == KEY

    def test_correlation_peak_at_leaky_sample(self):
        traces, cts, aes = synthetic_traces(3000)
        attack = CPAAttack(3)
        attack.add_traces(traces, cts)
        rho = attack.correlations()
        k10 = aes.round_keys[10]
        for j in (0, 5, 15):
            best_sample = np.abs(rho[j, k10[j]]).argmax()
            assert best_sample == 1

    def test_byte_ranks_zero_when_recovered(self):
        traces, cts, aes = synthetic_traces(3000)
        attack = CPAAttack(3)
        attack.add_traces(traces, cts)
        ranks = attack.byte_ranks(aes.round_keys[10])
        assert np.all(ranks == 0)

    def test_fails_gracefully_on_pure_noise(self):
        rng = np.random.default_rng(3)
        attack = CPAAttack(3)
        attack.add_traces(
            rng.normal(0, 1, (2000, 3)),
            rng.integers(0, 256, (2000, 16), dtype=np.uint8),
        )
        peaks = attack.peak_correlations()
        assert peaks.max() < 0.12  # nothing stands out

    def test_sample_window_restricts_work(self):
        traces, cts, aes = synthetic_traces(2000)
        attack = CPAAttack(3, sample_window=(1, 2))
        attack.add_traces(traces, cts)
        assert attack.correlations().shape == (16, 256, 1)
        np.testing.assert_array_equal(attack.best_guesses(), aes.round_keys[10])

    def test_window_excluding_leak_fails(self):
        traces, cts, aes = synthetic_traces(2000)
        attack = CPAAttack(3, sample_window=(0, 1))
        attack.add_traces(traces, cts)
        correct = np.sum(attack.best_guesses() == aes.round_keys[10])
        assert correct < 4


class TestIncremental:
    def test_incremental_equals_batch(self):
        traces, cts, _aes = synthetic_traces(1500)
        batch = CPAAttack(3)
        batch.add_traces(traces, cts)
        inc = CPAAttack(3)
        inc.add_traces(traces[:500], cts[:500])
        inc.add_traces(traces[500:900], cts[500:900])
        inc.add_traces(traces[900:], cts[900:])
        np.testing.assert_allclose(
            batch.correlations(), inc.correlations(), rtol=1e-9, atol=1e-12
        )

    def test_n_traces_tracks(self):
        traces, cts, _aes = synthetic_traces(100)
        attack = CPAAttack(3)
        attack.add_traces(traces[:40], cts[:40])
        attack.add_traces(traces[40:], cts[40:])
        assert attack.n_traces == 100

    def test_add_trace_set_with_limit(self):
        from repro.traces.store import TraceSet

        traces, cts, _aes = synthetic_traces(200)
        ts = TraceSet(
            traces=traces,
            plaintexts=np.zeros((200, 16), dtype=np.uint8),
            ciphertexts=cts,
            key=np.frombuffer(KEY, dtype=np.uint8),
        )
        attack = CPAAttack(3)
        attack.add_trace_set(ts, limit=150)
        assert attack.n_traces == 150


class TestCorrelationProperties:
    def test_bounded(self):
        traces, cts, _aes = synthetic_traces(1000)
        attack = CPAAttack(3)
        attack.add_traces(traces, cts)
        rho = attack.correlations()
        assert np.all(np.abs(rho) <= 1.0 + 1e-9)

    def test_invariant_to_trace_scaling(self):
        traces, cts, _aes = synthetic_traces(1000)
        a = CPAAttack(3)
        a.add_traces(traces, cts)
        b = CPAAttack(3)
        b.add_traces(traces * 7.5 + 3.0, cts)
        np.testing.assert_allclose(a.correlations(), b.correlations(), atol=1e-9)
