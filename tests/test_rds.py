"""Tests for the RDS routing-delay sensor."""

import numpy as np
import pytest

from repro.core.calibration import calibrate
from repro.errors import ConfigurationError
from repro.fpga.placement import Pblock, Placer
from repro.sensors.rds import RDS


@pytest.fixture(scope="module")
def placed_rds(basys3_device):
    sensor = RDS(device=basys3_device, seed=1)
    placer = Placer(basys3_device)
    sensor.place(
        placer, pblock=Pblock.from_region(basys3_device.region_by_name("X1Y0"))
    )
    calibrate(sensor, rng=0)
    return sensor


class TestConstruction:
    def test_too_few_routes_rejected(self, basys3_device):
        with pytest.raises(ConfigurationError):
            RDS(device=basys3_device, n_routes=1)

    def test_netlist_is_ffs_and_idelays_only(self, basys3_device):
        sensor = RDS(device=basys3_device, seed=0)
        counts = sensor.netlist().count_by_type()
        assert set(counts) == {"FDRE", "IDELAYE2"}
        assert counts["FDRE"] == 33  # launch + 32 captures

    def test_no_combinational_loop(self, basys3_device):
        assert RDS(device=basys3_device, seed=0).netlist().combinational_loops() == []

    def test_sampling_before_place_rejected(self, basys3_device):
        sensor = RDS(device=basys3_device, seed=0)
        with pytest.raises(ConfigurationError):
            sensor.bit_probabilities(np.array([1.0]))


class TestBehaviour:
    def test_arrival_ladder_straddles_period(self, placed_rds):
        arrivals = placed_rds._arrival_nominal
        period = placed_rds.clock.period
        assert arrivals.min() < period
        assert arrivals.max() > 0.8 * period

    def test_readout_monotone_in_voltage(self, placed_rds):
        v = np.linspace(0.94, 1.01, 20)
        r = placed_rds.expected_readout(v)
        assert np.all(np.diff(r) >= -1e-9)

    def test_calibrated_sensitivity(self, placed_rds):
        assert placed_rds.sensitivity() > 20

    def test_droop_visible(self, placed_rds):
        hi, lo = placed_rds.expected_readout(np.array([1.0, 0.96]))
        assert hi - lo > 1.5

    def test_detours_recorded(self, placed_rds):
        assert placed_rds.detour_tiles.max() > 0

    def test_evades_todays_checker(self, basys3_device):
        """RDS has no loop and no carry chain: today's bitstream rules
        accept it, like LeakyDSP (the paper's related-work argument)."""
        from repro.defense.checker import BitstreamChecker
        from repro.fpga.bitstream import generate_bitstream

        sensor = RDS(device=basys3_device, seed=2, name="rds2")
        placement = sensor.place(Placer(basys3_device))
        bs = generate_bitstream(sensor.netlist(), placement)
        assert BitstreamChecker(dsp_rules=True).accepts(bs)
