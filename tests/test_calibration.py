"""Tests for the IDELAY tap-sweep calibration."""

import numpy as np
import pytest

from repro.core.calibration import CalibrationResult, calibrate
from repro.core.leaky_dsp import LeakyDSP
from repro.errors import CalibrationError
from repro.sensors.tdc import TDC


class TestCalibrate:
    def test_sensor_becomes_sensitive(self, basys3_device):
        sensor = LeakyDSP(device=basys3_device, seed=11)
        calibrate(sensor, rng=0)
        assert sensor.sensitivity() > 100  # readout bits per volt

    def test_operating_point_has_dynamic_range(self, basys3_device):
        sensor = LeakyDSP(device=basys3_device, seed=11)
        calibrate(sensor, rng=0)
        idle = sensor.expected_readout(np.array([1.0]))[0]
        # Parked above the density peak: positive headroom for droop,
        # but not saturated.
        assert 20 < idle < 47

    def test_result_fields(self, basys3_device):
        sensor = LeakyDSP(device=basys3_device, seed=12)
        result = calibrate(sensor, rng=0)
        assert isinstance(result, CalibrationResult)
        assert result.taps == sensor.taps
        assert len(result.plan) == len(result.mean_readouts)
        assert result.best_step > 0.25
        assert result.sensitivity is not None

    def test_works_across_seeds(self, basys3_device):
        for seed in range(5):
            sensor = LeakyDSP(device=basys3_device, seed=100 + seed)
            result = calibrate(sensor, rng=seed)
            assert result.best_step > 1.0

    def test_works_for_tdc(self, basys3_device):
        sensor = TDC(device=basys3_device, seed=11)
        calibrate(sensor, rng=0)
        idle = sensor.expected_readout(np.array([1.0]))[0]
        assert 10 < idle < 118  # away from both rails

    def test_custom_voltage_source(self, basys3_device):
        sensor = LeakyDSP(device=basys3_device, seed=13)
        calls = []

        def source(n):
            calls.append(n)
            return np.full(n, 0.995)

        calibrate(sensor, voltage_source=source, samples_per_step=32, rng=0)
        assert calls and all(c == 32 for c in calls)

    def test_degenerate_sensor_raises(self, basys3_device):
        """A sensor whose settle times sit far outside the reachable
        phase window cannot calibrate."""
        sensor = LeakyDSP(device=basys3_device, seed=14)
        # Sabotage: push the capture offset far away from the chain.
        sensor.capture_offset += 20e-9
        sensor.invalidate_table()
        with pytest.raises(CalibrationError):
            calibrate(sensor, rng=0)

    def test_deterministic_given_rng(self, basys3_device):
        taps = []
        for _ in range(2):
            sensor = LeakyDSP(device=basys3_device, seed=15)
            taps.append(calibrate(sensor, rng=7).taps)
        assert taps[0] == taps[1]

    def test_park_steps_shift_operating_point(self, basys3_device):
        readouts = []
        for park in (0, 6):
            sensor = LeakyDSP(device=basys3_device, seed=16)
            calibrate(sensor, rng=0, park_steps=park)
            readouts.append(sensor.expected_readout(np.array([1.0]))[0])
        assert readouts[1] > readouts[0]
