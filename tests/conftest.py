"""Shared fixtures: module-scoped device/board objects keep the suite
fast (building site maps and placing 16k-cell viruses once, not per
test).

Also registers the deterministic hypothesis profile (derandomized, no
deadline) used for tier-1 runs, and the ``--update-goldens`` flag that
rewrites ``tests/golden/*.json`` from the current outputs.
"""

import os

import numpy as np
import pytest

from repro.fpga.device import xc7a35t, zu3eg
from repro.fpga.placement import Placer

try:  # hypothesis is a dev-only dependency; the suite degrades gracefully.
    from hypothesis import HealthCheck, settings as hypothesis_settings

    # The suite's strategies are constructive (no assume()-heavy
    # filtering), so filter_too_much stays enforced: a strategy that
    # starts rejecting most draws is a bug, not an environment quirk.
    hypothesis_settings.register_profile(
        "repro",
        derandomize=True,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))
except ImportError:  # pragma: no cover - exercised only without hypothesis
    pass


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from the current outputs",
    )


@pytest.fixture(scope="session")
def update_goldens(request):
    """Whether this run should rewrite the golden files."""
    return request.config.getoption("--update-goldens")


@pytest.fixture(scope="session")
def basys3_device():
    return xc7a35t()


@pytest.fixture(scope="session")
def zu3eg_device():
    return zu3eg()


@pytest.fixture()
def placer(basys3_device):
    return Placer(basys3_device)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
