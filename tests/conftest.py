"""Shared fixtures: module-scoped device/board objects keep the suite
fast (building site maps and placing 16k-cell viruses once, not per
test)."""

import numpy as np
import pytest

from repro.fpga.device import xc7a35t, zu3eg
from repro.fpga.placement import Placer


@pytest.fixture(scope="session")
def basys3_device():
    return xc7a35t()


@pytest.fixture(scope="session")
def zu3eg_device():
    return zu3eg()


@pytest.fixture()
def placer(basys3_device):
    return Placer(basys3_device)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
