"""Deterministic end-to-end tests of the campaign service.

No sleeps, no wall-clock dependence: every test injects

* an **inline executor** — ``submit()`` runs the campaign synchronously
  in the event-loop thread and returns a resolved future, so job
  execution is totally ordered with the service's own bookkeeping;
* a **fake clock** — all job/event timestamps are monotone counter
  ticks, so timing assertions are exact equalities;
* the per-job **on_event observer** — called synchronously inside the
  campaign's progress hook, which is how a test cancels a job at an
  exact checkpoint.

The acceptance end-to-end (two tenants, one shared block cache, curves
bit-identical to direct engine runs, coalesced submissions acquiring
exactly once) is :class:`TestTwoTenantAcceptance`.
"""

import asyncio
import concurrent.futures
import json
import threading

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    QuotaExceededError,
    ServiceError,
)
from repro.runtime import Engine
from repro.service import CampaignService, JobState, TenantQuota
from repro.telemetry.runlog import read_run

#: A fig5 campaign small enough for sub-second cold runs: 4 shards of
#: 128 traces, a key-rank checkpoint every 128 traces.
TINY = {"n_traces": 512, "step": 128, "rating_at": 256}
TINY_KW = dict(shard_size=128, options=TINY)


class InlineExecutor:
    """``concurrent.futures``-compatible executor that runs submissions
    synchronously in the caller's thread (the event loop)."""

    def __init__(self):
        self.submitted = 0

    def submit(self, fn, *args):
        self.submitted += 1
        future = concurrent.futures.Future()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # noqa: BLE001 - relayed via future
            future.set_exception(exc)
        return future

    def shutdown(self, wait=True):
        pass


class FakeClock:
    """Monotone tick counter standing in for ``time.time``."""

    def __init__(self, start=1_000.0, tick=1.0):
        self.now = start
        self.tick = tick

    def __call__(self):
        self.now += self.tick
        return self.now


def make_service(tmp_path=None, **kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("executor", InlineExecutor())
    kwargs.setdefault("clock", FakeClock())
    if tmp_path is not None:
        kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
        kwargs.setdefault("run_root", str(tmp_path / "runs"))
    return CampaignService(**kwargs)


def direct_fig5_curve(seed, chunk_size=None):
    """The same TINY fig5 campaign run directly on an engine — the
    ground truth the service's streamed checkpoints must match."""
    from repro.experiments.table1_traces import streamed_placement_curve

    engine = Engine(workers=1, shard_size=128)
    curve, _ = streamed_placement_curve(
        engine,
        "P6",
        TINY["n_traces"],
        TINY["step"],
        "LeakyDSP",
        rng=np.random.SeedSequence(seed).spawn(1)[0],
        chunk_size=chunk_size,
    )
    return curve


def curve_tuples(curve):
    return [
        (p.n_traces, p.log2_lower, p.log2_upper, p.recovered)
        for p in curve.points
    ]


def checkpoint_tuples(checkpoints):
    return [
        (c["n_traces"], c["log2_lower"], c["log2_upper"], c["recovered"])
        for c in checkpoints
    ]


class TestLifecycle:
    def test_submit_streams_checkpoints_to_completion(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path)
            await service.start()
            job = await service.submit("alice", "fig5", seed=7, **TINY_KW)
            assert job.state is JobState.QUEUED
            done = await service.join(job.id)
            await service.stop()
            return done

        job = asyncio.run(scenario())
        assert job.state is JobState.COMPLETED
        assert job.error is None
        # 512 traces / step 128 = 4 key-rank checkpoints, in order.
        assert [c["n_traces"] for c in job.checkpoints] == [128, 256, 384, 512]
        assert all(c["placement"] == "P6" for c in job.checkpoints)
        states = [
            e.data["state"] for e in job.events if e.kind == "state"
        ]
        assert states == ["queued", "running", "completed"]
        # Fake-clock timestamps: strictly ordered, no wall clock.
        assert job.submitted_at < job.started_at < job.finished_at
        payload = job.result
        assert payload["experiment"] == "fig5"
        assert payload["manifest_hash"] == job.key
        assert payload["result_digest"]
        assert "P6_log2_rank_at_256" in payload["metrics"]

    def test_every_job_gets_a_run_record(self, tmp_path):
        """The per-request SLO gate: each job writes manifest + JSONL
        run log under run_root/<job id>, readable by `repro report`."""

        async def scenario():
            service = make_service(tmp_path)
            await service.start()
            job = await service.submit("alice", "fig5", seed=7, **TINY_KW)
            done = await service.join(job.id)
            await service.stop()
            return done

        job = asyncio.run(scenario())
        run_dir = job.result["run_dir"]
        assert run_dir.endswith(job.id)
        record = read_run(run_dir)
        end = record.one("run_end")
        assert end["status"] == "ok"
        metrics_event = record.one("metrics")
        assert metrics_event["result_digest"] == job.result["result_digest"]
        manifest = json.loads((tmp_path / "runs" / job.id / "manifest.json").read_text())
        assert manifest["config"]["experiment"] == "fig5"
        from repro.telemetry.report import summarize

        assert any("fig5" in line for line in summarize(run_dir).lines())

    def test_watch_replays_full_event_log(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path)
            await service.start()
            job = await service.submit("alice", "fig5", seed=7, **TINY_KW)
            await service.join(job.id)
            replayed = [event async for event in service.watch(job.id)]
            await service.stop()
            return job, replayed

        job, replayed = asyncio.run(scenario())
        assert replayed == job.events
        kinds = [e.kind for e in replayed]
        assert kinds[0] == "state" and kinds[-1] == "state"
        assert kinds.count("checkpoint") == 4

    def test_submit_requires_running_service(self):
        async def scenario():
            service = make_service()
            with pytest.raises(ServiceError):
                await service.submit("alice", "fig5")

        asyncio.run(scenario())

    def test_unknown_experiment_rejected_at_admission(self):
        async def scenario():
            service = make_service()
            await service.start()
            with pytest.raises(ConfigurationError):
                await service.submit("alice", "frobnicate")
            assert service.ledger.as_dict() == {}
            await service.stop()

        asyncio.run(scenario())

    def test_unknown_job_id(self):
        async def scenario():
            service = make_service()
            await service.start()
            with pytest.raises(ServiceError):
                service.status("job-999999")
            await service.stop()

        asyncio.run(scenario())

    def test_failed_job_reports_error_and_frees_quota(self):
        async def scenario():
            service = make_service(quota=TenantQuota(max_active=1))
            await service.start()
            job = await service.submit(
                "alice", "fig5", options={"placements": ("NOPE",), **TINY},
                shard_size=128,
            )
            done = await service.join(job.id)
            assert done.state is JobState.FAILED
            assert done.error
            assert service.ledger.as_dict() == {}
            # The freed slot admits the next submission.
            retry = await service.submit("alice", "fig5", seed=7, **TINY_KW)
            done2 = await service.join(retry.id)
            await service.stop()
            return done2

        assert asyncio.run(scenario()).state is JobState.COMPLETED


class TestQuota:
    def test_admission_rejects_over_quota(self):
        async def scenario():
            service = make_service(quota=TenantQuota(max_active=2))
            await service.start()
            first = await service.submit("alice", "fig5", seed=1, **TINY_KW)
            second = await service.submit("alice", "fig5", seed=2, **TINY_KW)
            with pytest.raises(QuotaExceededError):
                await service.submit("alice", "fig5", seed=3, **TINY_KW)
            # Another tenant is unaffected by alice's quota.
            other = await service.submit("bob", "fig5", seed=3, **TINY_KW)
            await service.join(first.id)
            await service.join(second.id)
            await service.join(other.id)
            # Slots freed at terminal state: alice can submit again.
            again = await service.submit("alice", "fig5", seed=4, **TINY_KW)
            await service.join(again.id)
            assert service.ledger.as_dict() == {}
            await service.stop()

        asyncio.run(scenario())

    def test_coalesced_followers_hold_their_own_slot(self):
        async def scenario():
            service = make_service(quota=TenantQuota(max_active=2))
            await service.start()
            one = await service.submit("alice", "fig5", seed=7, **TINY_KW)
            two = await service.submit("alice", "fig5", seed=7, **TINY_KW)
            assert two.coalesced_into == one.id
            with pytest.raises(QuotaExceededError):
                await service.submit("alice", "fig5", seed=7, **TINY_KW)
            await service.join(one.id)
            await service.join(two.id)
            assert service.ledger.as_dict() == {}
            await service.stop()

        asyncio.run(scenario())


class TestCoalescing:
    def test_identical_submissions_share_one_run(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path)
            await service.start()
            a = await service.submit("alice", "fig5", seed=7, **TINY_KW)
            b = await service.submit("bob", "fig5", seed=7, **TINY_KW)
            c = await service.submit("carol", "fig5", seed=8, **TINY_KW)
            await service.join(a.id)
            await service.join(b.id)
            await service.join(c.id)
            await service.stop()
            return service, a, b, c

        service, a, b, c = asyncio.run(scenario())
        assert b.coalesced_into == a.id
        assert c.coalesced_into is None  # different seed: a fresh run
        # The follower's result is the *same object* — bit-identical by
        # construction, not by re-running.
        assert b.result is a.result
        assert b.state is JobState.COMPLETED
        assert checkpoint_tuples(b.checkpoints) == checkpoint_tuples(a.checkpoints)
        # One acquisition for a+b: the executor saw two campaigns total
        # (the coalesced pair's and carol's).
        assert service._executor.submitted == 2

    def test_worker_count_does_not_split_coalescing(self):
        """The job key is the manifest hash, which excludes the worker
        count: the same campaign at any parallelism coalesces."""

        async def scenario():
            service = make_service()
            await service.start()
            a = await service.submit("alice", "fig5", seed=7, workers=1, **TINY_KW)
            b = await service.submit("bob", "fig5", seed=7, workers=2, **TINY_KW)
            await service.join(a.id)
            await service.stop()
            return a, b

        a, b = asyncio.run(scenario())
        assert b.coalesced_into == a.id

    def test_completed_run_is_not_a_coalescing_target(self):
        async def scenario():
            service = make_service()
            await service.start()
            a = await service.submit("alice", "fig5", seed=7, **TINY_KW)
            await service.join(a.id)
            b = await service.submit("bob", "fig5", seed=7, **TINY_KW)
            await service.join(b.id)
            await service.stop()
            return a, b

        a, b = asyncio.run(scenario())
        assert b.coalesced_into is None
        assert b.result is not a.result
        assert b.result["result_digest"] == a.result["result_digest"]


class TestCancellation:
    def test_cancel_queued_job_never_runs(self):
        async def scenario():
            service = make_service()
            await service.start()
            first = await service.submit("alice", "fig5", seed=1, **TINY_KW)
            victim = await service.submit("alice", "fig5", seed=2, **TINY_KW)
            assert service.cancel(victim.id)
            await service.join(first.id)
            done = await service.join(victim.id)
            await service.stop()
            return service, done

        service, victim = asyncio.run(scenario())
        assert victim.state is JobState.CANCELLED
        assert victim.result is None
        assert victim.checkpoints == []
        assert service.ledger.as_dict() == {}
        # Only the surviving job reached the executor.
        assert service._executor.submitted == 1

    def test_cancel_mid_stream_stops_at_exact_checkpoint(self):
        """Cooperative cancellation: the progress hook raises at its
        next call after the flag, so a job cancelled at checkpoint 2
        streams exactly 2 checkpoints."""

        async def scenario():
            service = make_service()
            await service.start()
            seen = {"checkpoints": 0}

            def cancel_at_second(job, event):
                if event.kind == "checkpoint":
                    seen["checkpoints"] += 1
                    if seen["checkpoints"] == 2:
                        assert service.cancel(job.id)

            job = await service.submit(
                "alice", "fig5", seed=7, on_event=cancel_at_second, **TINY_KW
            )
            done = await service.join(job.id)
            await service.stop()
            return service, done

        service, job = asyncio.run(scenario())
        assert job.state is JobState.CANCELLED
        assert job.error == "cancelled"
        assert len(job.checkpoints) == 2
        assert [c["n_traces"] for c in job.checkpoints] == [128, 256]
        assert job.result is None
        assert service.ledger.as_dict() == {}

    def test_cancel_terminal_job_is_a_noop(self):
        async def scenario():
            service = make_service()
            await service.start()
            job = await service.submit("alice", "fig5", seed=7, **TINY_KW)
            await service.join(job.id)
            cancelled = service.cancel(job.id)
            await service.stop()
            return job, cancelled

        job, cancelled = asyncio.run(scenario())
        assert cancelled is False
        assert job.state is JobState.COMPLETED

    def test_cancel_queued_primary_promotes_follower(self):
        """Cancelling a queued primary hands the run to its first live
        follower — the follower still completes with a full result."""

        async def scenario():
            service = make_service()
            await service.start()
            blocker = await service.submit("alice", "fig5", seed=1, **TINY_KW)
            primary = await service.submit("alice", "fig5", seed=2, **TINY_KW)
            follower = await service.submit("bob", "fig5", seed=2, **TINY_KW)
            assert follower.coalesced_into == primary.id
            assert service.cancel(primary.id)
            await service.join(blocker.id)
            done = await service.join(follower.id)
            cancelled = await service.join(primary.id)
            await service.stop()
            return service, done, cancelled

        service, follower, primary = asyncio.run(scenario())
        assert primary.state is JobState.CANCELLED
        assert follower.state is JobState.COMPLETED
        assert follower.coalesced_into is None  # promoted to primary
        assert len(follower.checkpoints) == 4
        assert service.ledger.as_dict() == {}

    def test_cancel_follower_leaves_primary_running(self):
        async def scenario():
            service = make_service()
            await service.start()
            primary = await service.submit("alice", "fig5", seed=7, **TINY_KW)
            follower = await service.submit("bob", "fig5", seed=7, **TINY_KW)
            assert service.cancel(follower.id)
            done = await service.join(primary.id)
            dropped = await service.join(follower.id)
            await service.stop()
            return service, done, dropped

        service, primary, follower = asyncio.run(scenario())
        assert primary.state is JobState.COMPLETED
        assert len(primary.checkpoints) == 4
        assert follower.state is JobState.CANCELLED
        assert follower.result is None
        assert service.ledger.as_dict() == {}

    def test_stop_cancels_still_queued_jobs(self):
        async def scenario():
            service = make_service(workers=1)
            await service.start()
            jobs = [
                await service.submit("alice", "fig5", seed=s, **TINY_KW)
                for s in (1, 2, 3)
            ]
            # Stop before yielding to the worker: nothing ran yet.
            await service.stop()
            return service, jobs

        service, jobs = asyncio.run(scenario())
        assert all(job.state is JobState.CANCELLED for job in jobs)
        assert service.ledger.as_dict() == {}


class TestDifferentialCheckpoints:
    """Satellite: service-streamed checkpoints are bit-identical to a
    direct engine run of the same campaign at the same chunk size."""

    @pytest.mark.parametrize("chunk_size", [None, 64])
    def test_streamed_checkpoints_match_direct_engine(self, chunk_size):
        async def scenario():
            service = make_service()
            await service.start()
            job = await service.submit(
                "alice", "fig5", seed=3, chunk_size=chunk_size, **TINY_KW
            )
            done = await service.join(job.id)
            await service.stop()
            return done

        job = asyncio.run(scenario())
        assert job.state is JobState.COMPLETED
        direct = direct_fig5_curve(seed=3, chunk_size=chunk_size)
        # Exact float equality: the service relays full-precision rank
        # bounds, and the engine is bit-deterministic per chunk size.
        assert checkpoint_tuples(job.checkpoints) == curve_tuples(direct)


class TestTwoTenantAcceptance:
    """The PR's acceptance end-to-end: two tenants, one cache dir."""

    def test_overlapping_campaigns_share_cache_and_match_engine(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path, quota=TenantQuota(max_active=4))
            await service.start()
            # Tenant 1 runs the campaign cold.
            alice = await service.submit("alice", "fig5", seed=3, **TINY_KW)
            alice_done = await service.join(alice.id)
            # Tenant 2 submits the overlapping campaign afterwards: a
            # fresh run (no in-flight coalescing) on the shared cache.
            bob = await service.submit("bob", "fig5", seed=3, **TINY_KW)
            bob_done = await service.join(bob.id)
            # Identical *concurrent* submissions (both tenants again).
            c1 = await service.submit("alice", "fig5", seed=9, **TINY_KW)
            c2 = await service.submit("bob", "fig5", seed=9, **TINY_KW)
            await service.join(c1.id)
            await service.join(c2.id)
            await service.stop()
            return service, alice_done, bob_done, c1, c2

        service, alice, bob, c1, c2 = asyncio.run(scenario())

        # Both completed; bob's run was warm: BlockStore hits > 0.
        assert alice.state is bob.state is JobState.COMPLETED
        assert bob.coalesced_into is None
        assert alice.result["cache"]["hits"] == 0
        assert alice.result["cache"]["misses"] > 0
        assert bob.result["cache"]["hits"] > 0
        assert bob.result["cache"]["misses"] == 0

        # Both tenants' streamed rank curves are bit-identical to a
        # direct engine run of the same campaign.
        direct = curve_tuples(direct_fig5_curve(seed=3))
        assert checkpoint_tuples(alice.checkpoints) == direct
        assert checkpoint_tuples(bob.checkpoints) == direct

        # Identical concurrent submissions ran acquisition exactly once.
        assert c2.coalesced_into == c1.id
        assert c2.result is c1.result
        assert service._executor.submitted == 3  # alice, bob, c1+c2


class TestSocketFrontEnd:
    """The unix-socket wire layer: a blocking client in a side thread
    against the asyncio server (real threads, but every assertion waits
    on protocol completion — no timing races)."""

    def run_with_server(self, tmp_path, client_fn):
        from repro.service.client import ServiceClient
        from repro.service.server import ServiceServer

        socket_path = str(tmp_path / "svc.sock")

        async def scenario():
            service = CampaignService(
                workers=1, cache_dir=str(tmp_path / "cache")
            )
            server = ServiceServer(service, socket_path)
            await server.start()
            results = {}
            thread = threading.Thread(
                target=client_fn, args=(ServiceClient(socket_path), results)
            )
            thread.start()
            while thread.is_alive():
                await asyncio.sleep(0.01)
            thread.join()
            await server.close()
            return results

        return asyncio.run(scenario())

    def test_submit_watch_status_round_trip(self, tmp_path):
        def client_side(client, results):
            results["ping"] = client.ping()
            lines = list(
                client.submit_and_watch(
                    "alice", "fig5", seed=7, shard_size=128, options=TINY
                )
            )
            results["events"] = [l["event"] for l in lines if "event" in l]
            results["final"] = lines[-1]
            job_id = results["final"]["job"]["id"]
            results["status"] = client.status(job_id)
            results["jobs"] = client.jobs()
            results["replay"] = [
                l["event"] for l in client.watch(job_id) if "event" in l
            ]

        results = self.run_with_server(tmp_path, client_side)
        assert results["ping"]["pending"] == 0
        final_job = results["final"]["job"]
        assert results["final"]["ok"] and final_job["state"] == "completed"
        checkpoints = [
            e for e in results["events"] if e["kind"] == "checkpoint"
        ]
        assert [c["data"]["n_traces"] for c in checkpoints] == [128, 256, 384, 512]
        assert results["status"]["n_checkpoints"] == 4
        assert [j["id"] for j in results["jobs"]] == [final_job["id"]]
        # watch on a finished job replays the identical event log.
        assert results["replay"] == results["events"]

    def test_error_paths_over_the_wire(self, tmp_path):
        def client_side(client, results):
            try:
                client.status("job-999999")
            except ServiceError as exc:
                results["unknown_job"] = str(exc)
            try:
                client.submit("alice", "frobnicate")
            except ServiceError as exc:
                results["unknown_experiment"] = str(exc)

        results = self.run_with_server(tmp_path, client_side)
        assert "job-999999" in results["unknown_job"]
        assert "frobnicate" in results["unknown_experiment"]

    def test_client_without_server(self, tmp_path):
        from repro.service.client import ServiceClient

        client = ServiceClient(str(tmp_path / "nope.sock"))
        with pytest.raises(ServiceError, match="repro serve"):
            client.ping()
