"""Tests for trace preprocessing."""

import numpy as np
import pytest

from repro.analysis.preprocess import (
    align,
    average_groups,
    moving_average,
    select_poi,
    standardize,
)
from repro.errors import AttackError


class TestStandardize:
    def test_zero_mean_unit_var(self, rng):
        t = rng.normal(5, 3, (200, 10))
        z = standardize(t)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-12)

    def test_constant_samples_map_to_zero(self):
        t = np.ones((50, 4))
        np.testing.assert_array_equal(standardize(t), 0.0)

    def test_bad_shape_rejected(self):
        with pytest.raises(AttackError):
            standardize(np.zeros(10))


class TestMovingAverage:
    def test_window_one_identity(self, rng):
        t = rng.normal(0, 1, (5, 20))
        np.testing.assert_array_equal(moving_average(t, 1), t)

    def test_constant_preserved(self):
        t = np.full((3, 30), 7.0)
        np.testing.assert_allclose(moving_average(t, 5), 7.0)

    def test_reduces_white_noise(self, rng):
        t = rng.normal(0, 1, (10, 500))
        smoothed = moving_average(t, 9)
        assert smoothed.std() < 0.5 * t.std()

    def test_bad_window_rejected(self, rng):
        t = rng.normal(0, 1, (2, 10))
        with pytest.raises(AttackError):
            moving_average(t, 0)
        with pytest.raises(AttackError):
            moving_average(t, 11)


class TestAlign:
    def test_recovers_injected_shifts(self, rng):
        pulse = np.zeros(100)
        pulse[40:50] = 10.0
        true_shifts = [-3, 0, 2, 5]
        traces = np.stack(
            [np.roll(pulse, -s) + rng.normal(0, 0.1, 100) for s in true_shifts]
        )
        aligned, shifts = align(traces, reference=pulse, max_shift=8)
        # Convention: a positive shift advances a lagging trace, so the
        # recovered shifts are the negated injected rolls.
        np.testing.assert_array_equal(shifts, [3, 0, -2, -5])
        # After alignment every pulse onset returns to the reference
        # position (argmax inside the flat pulse top is noise-picked,
        # so check the rising edge instead).
        onsets = (aligned > 5.0).argmax(axis=1)
        np.testing.assert_array_equal(onsets, 40)

    def test_default_reference_is_mean(self, rng):
        t = rng.normal(0, 1, (4, 50))
        aligned, shifts = align(t, max_shift=3)
        assert aligned.shape == t.shape

    def test_bad_reference_length_rejected(self, rng):
        with pytest.raises(AttackError):
            align(rng.normal(0, 1, (2, 20)), reference=np.zeros(19))

    def test_bad_max_shift_rejected(self, rng):
        with pytest.raises(AttackError):
            align(rng.normal(0, 1, (2, 20)), max_shift=25)


class TestSelectPoi:
    def test_picks_high_variance_samples(self, rng):
        t = rng.normal(0, 0.1, (300, 20))
        t[:, 5] += rng.normal(0, 5, 300)
        t[:, 12] += rng.normal(0, 5, 300)
        poi = select_poi(t, 2)
        assert set(poi) == {5, 12}

    def test_sorted_output(self, rng):
        t = rng.normal(0, 1, (50, 30))
        poi = select_poi(t, 10)
        assert list(poi) == sorted(poi)

    def test_bounds_rejected(self, rng):
        t = rng.normal(0, 1, (5, 10))
        with pytest.raises(AttackError):
            select_poi(t, 0)
        with pytest.raises(AttackError):
            select_poi(t, 11)


class TestAverageGroups:
    def test_mean_of_groups(self):
        t = np.arange(12, dtype=float).reshape(6, 2)
        out = average_groups(t, 2)
        assert out.shape == (3, 2)
        np.testing.assert_array_equal(out[0], t[:2].mean(axis=0))

    def test_drops_leftovers(self, rng):
        t = rng.normal(0, 1, (7, 4))
        assert average_groups(t, 3).shape == (2, 4)

    def test_too_few_traces_rejected(self, rng):
        with pytest.raises(AttackError):
            average_groups(rng.normal(0, 1, (2, 4)), 5)
