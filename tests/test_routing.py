"""Tests for the routing model."""

import pytest

from repro.errors import NetlistError
from repro.fpga.netlist import Netlist
from repro.fpga.placement import Pblock, Placer
from repro.fpga.primitives import FDRE, LUT
from repro.fpga.routing import (
    RoutedConnection,
    Router,
    l_shaped_path,
)
from repro.timing.paths import ROUTING_DELAY_BASE, ROUTING_DELAY_PER_TILE


class TestLShapedPath:
    def test_same_tile(self):
        assert l_shaped_path((3, 4), (3, 4)) == [(3, 4)]

    def test_horizontal(self):
        assert l_shaped_path((0, 0), (3, 0)) == [(0, 0), (1, 0), (2, 0), (3, 0)]

    def test_vertical(self):
        assert l_shaped_path((2, 5), (2, 3)) == [(2, 5), (2, 4), (2, 3)]

    def test_l_shape(self):
        path = l_shaped_path((0, 0), (2, 2))
        assert path[0] == (0, 0)
        assert path[-1] == (2, 2)
        assert len(path) == 5  # 2 horizontal + 2 vertical + start

    def test_negative_direction(self):
        path = l_shaped_path((3, 3), (1, 1))
        assert path[0] == (3, 3)
        assert path[-1] == (1, 1)

    def test_manhattan_length(self):
        path = l_shaped_path((1, 2), (6, 9))
        assert len(path) - 1 == abs(6 - 1) + abs(9 - 2)


class TestRoutedConnection:
    def test_delay_formula(self):
        conn = RoutedConnection("sink", [(0, 0), (1, 0), (2, 0)])
        assert conn.wirelength == 2
        assert conn.delay == pytest.approx(
            ROUTING_DELAY_BASE + 2 * ROUTING_DELAY_PER_TILE
        )


@pytest.fixture()
def routed_pair(basys3_device):
    nl = Netlist("pair")
    nl.add_port("x", "in")
    nl.add_cell(LUT.inverter("a"))
    nl.add_cell(FDRE("b"))
    nl.connect("n_in", ("x", "O"), [("a", "I0")])
    nl.connect("n_ab", ("a", "O"), [("b", "D")])
    placer = Placer(basys3_device)
    placement = placer.place(nl, pblock=Pblock("p", 1, 0, 13, 40))
    routing = Router(basys3_device).route(nl, placement)
    return nl, placement, routing


class TestRouter:
    def test_cell_to_cell_net_routed(self, routed_pair):
        _nl, placement, routing = routed_pair
        net = routing.net("n_ab")
        assert net.driver_cell == "a"
        src = placement.site_of("a")
        dst = placement.site_of("b")
        assert net.connections[0].path[0] == (src.x, src.y)
        assert net.connections[0].path[-1] == (dst.x, dst.y)

    def test_port_nets_skipped(self, routed_pair):
        _nl, _placement, routing = routed_pair
        with pytest.raises(NetlistError):
            routing.net("n_in")

    def test_delay_to_unknown_sink_raises(self, routed_pair):
        _nl, _placement, routing = routed_pair
        with pytest.raises(NetlistError):
            routing.net("n_ab").delay_to("ghost")

    def test_utilization_in_unit_interval(self, routed_pair):
        _nl, _p, routing = routed_pair
        assert 0 < routing.utilization() < 1

    def test_congestion_counts_paths(self, routed_pair):
        _nl, _p, routing = routed_pair
        usage = routing.congestion_map()
        assert sum(usage.values()) >= len(routing.net("n_ab").connections[0].path)

    def test_virus_covers_substantial_routing(self, basys3_device):
        """The paper sizes 8,000 virus instances as covering over a
        third of the board's routing; our model's bank lands in that
        regime."""
        from repro.victims.power_virus import PowerVirusBank

        virus = PowerVirusBank(basys3_device, 8000, 8)
        placer = Placer(basys3_device)
        half = basys3_device.width // 2
        placement = virus.place(
            placer,
            [
                Pblock("l", 0, 0, half - 1, 59),
                Pblock("r", half, 0, basys3_device.width - 1, 59),
            ],
        )
        routing = Router(basys3_device).route(virus.netlist(), placement)
        assert routing.utilization() > 0.3

    def test_fanout_net_has_one_connection_per_sink(self, basys3_device):
        nl = Netlist("fan")
        nl.add_cell(LUT.inverter("src"))
        for i in range(5):
            nl.add_cell(FDRE(f"ff{i}"))
        nl.connect(
            "n_fan", ("src", "O"), [(f"ff{i}", "D") for i in range(5)]
        )
        placement = Placer(basys3_device).place(nl)
        routing = Router(basys3_device).route(nl, placement)
        assert len(routing.net("n_fan").connections) == 5
