"""Tests for the LeakyDSP sensor: structure, functional model, readout
behaviour and the tap interface."""

import numpy as np
import pytest

from repro.config import DEFAULT_CONSTANTS
from repro.core.leaky_dsp import LeakyDSP
from repro.errors import ConfigurationError
from repro.fpga.device import SiteType, zu3eg
from repro.fpga.placement import Placer
from repro.timing.sampling import ClockSpec


@pytest.fixture(scope="module")
def sensor(basys3_device):
    return LeakyDSP(device=basys3_device, seed=1)


class TestConstruction:
    def test_default_three_blocks(self, sensor):
        assert sensor.n_blocks == 3
        assert sensor.output_width == 48

    def test_chain_delay_scales_with_blocks(self, basys3_device):
        d1 = LeakyDSP(device=basys3_device, n_blocks=1, seed=0).chain_delay
        d3 = LeakyDSP(device=basys3_device, n_blocks=3, seed=0).chain_delay
        assert d3 > 2.9 * d1

    def test_zero_blocks_rejected(self, basys3_device):
        with pytest.raises(ConfigurationError):
            LeakyDSP(device=basys3_device, n_blocks=0)

    def test_too_many_blocks_rejected(self, basys3_device):
        with pytest.raises(ConfigurationError):
            LeakyDSP(device=basys3_device, n_blocks=basys3_device.num_dsps + 1)

    def test_capture_offset_within_half_period(self, sensor):
        margin = sensor.capture_offset - sensor.chain_delay
        assert abs(margin) <= sensor.clock.period / 2 + 1e-12

    def test_same_seed_same_silicon(self, basys3_device):
        a = LeakyDSP(device=basys3_device, seed=5)
        b = LeakyDSP(device=basys3_device, seed=5)
        np.testing.assert_array_equal(a._bit_offsets, b._bit_offsets)

    def test_different_seed_different_silicon(self, basys3_device):
        a = LeakyDSP(device=basys3_device, seed=5)
        b = LeakyDSP(device=basys3_device, seed=6)
        assert not np.array_equal(a._bit_offsets, b._bit_offsets)


class TestNetlistStructure:
    def test_block_count(self, sensor):
        nl = sensor.netlist()
        assert len(nl.cells_of_type("DSP48E1")) == 3

    def test_only_last_block_registered(self, sensor):
        dsps = sorted(sensor.netlist().cells_of_type("DSP48E1"), key=lambda c: c.name)
        assert [c.primitive.attributes["PREG"] for c in dsps] == [0, 0, 1]

    def test_two_idelays(self, sensor):
        assert len(sensor.netlist().cells_of_type("IDELAYE2")) == 2

    def test_no_fabric_logic(self, sensor):
        counts = sensor.netlist().count_by_type()
        assert "LUT" not in counts
        assert "FDRE" not in counts
        assert "CARRY4" not in counts

    def test_no_combinational_loop(self, sensor):
        assert sensor.netlist().combinational_loops() == []

    def test_cascade_connectivity(self, sensor):
        g = sensor.netlist().graph()
        dsps = sorted(c.name for c in sensor.netlist().cells_of_type("DSP48E1"))
        assert g.has_edge(dsps[0], dsps[1])
        assert g.has_edge(dsps[1], dsps[2])

    def test_ultrascale_variant_uses_e2(self, zu3eg_device):
        sensor = LeakyDSP(device=zu3eg_device, seed=0)
        nl = sensor.netlist()
        assert len(nl.cells_of_type("DSP48E2")) == 3
        assert len(nl.cells_of_type("IDELAYE3")) == 2


class TestFunctionalModel:
    def test_identity_function(self, sensor):
        assert sensor.functional_check()

    def test_identity_on_ultrascale(self, zu3eg_device):
        assert LeakyDSP(device=zu3eg_device, seed=0).functional_check()


class TestReadoutBehaviour:
    def test_probabilities_shape(self, sensor):
        p = sensor.bit_probabilities(np.array([1.0, 0.98]))
        assert p.shape == (2, 48)
        assert np.all((0 <= p) & (p <= 1))

    def test_readout_monotone_in_voltage(self, basys3_device):
        s = LeakyDSP(device=basys3_device, seed=2)
        s.set_taps(20, 0)  # roughly centered
        v = np.linspace(0.9, 1.02, 40)
        r = s.expected_readout(v)
        assert np.all(np.diff(r) >= -1e-9)

    def test_droop_lowers_readout(self, basys3_device):
        s = LeakyDSP(device=basys3_device, seed=2)
        s.set_taps(20, 0)
        hi, lo = s.expected_readout(np.array([1.0, 0.97]))
        assert hi > lo + 3

    def test_sensitivity_positive_when_centred(self, basys3_device):
        # Readout rises with supply voltage (droop -> fewer settled
        # bits), which is why readout correlates negatively with
        # victim activity in Fig. 3.
        s = LeakyDSP(device=basys3_device, seed=2)
        s.set_taps(20, 0)
        assert s.sensitivity() > 0

    def test_phase_margin_moves_with_taps(self, basys3_device):
        s = LeakyDSP(device=basys3_device, seed=2)
        s.set_taps(0, 0)
        m0 = s.phase_margin
        s.set_taps(0, 10)
        assert s.phase_margin > m0
        s.set_taps(10, 0)
        assert s.phase_margin < m0

    def test_tap_plan_monotone_phase(self, sensor):
        plan = sensor.tap_plan()
        phases = []
        for a, c in plan:
            phases.append(c * sensor._idelay_clk.tap_delay - a * sensor._idelay_a.tap_delay)
        assert all(b >= a for a, b in zip(phases, phases[1:]))

    def test_tap_plan_respects_max_steps(self, sensor):
        assert len(sensor.tap_plan(max_steps=16)) <= 17

    def test_taps_property_roundtrip(self, basys3_device):
        s = LeakyDSP(device=basys3_device, seed=2)
        s.set_taps(3, 7)
        assert s.taps == (3, 7)


class TestPlacementIntegration:
    def test_place_assigns_dsp_sites(self, basys3_device):
        s = LeakyDSP(device=basys3_device, seed=3)
        placement = s.place(Placer(basys3_device))
        for cell in s.netlist().cells_of_type("DSP48E1"):
            assert placement.site_of(cell.name).site_type is SiteType.DSP
        assert s.position is not None

    def test_unplaced_position_raises(self, basys3_device):
        s = LeakyDSP(device=basys3_device, seed=3)
        with pytest.raises(ConfigurationError):
            s.require_position()
