"""Fleet-observability tests: trace stitching, live metrics, repro top.

Covers the cross-process pieces added for live fleet metrics:

* Perfetto stitching invariants — pid/tid mapping, shared-origin
  re-basing, trace-id filtering, process-metadata dedup;
* the cache server's counters under concurrent load + /metrics scrapes
  (the ``count()`` lock regression test);
* service-level observability — ``queued_by_tenant`` in stats/ping,
  the ``metrics`` socket op, per-job trace ids (inherited across
  coalescing), and the quota-rejection counter;
* the run-log ``metrics_snapshot`` determinism contract (bit-identical
  deterministic snapshots across worker counts);
* latency quantiles in ``repro report`` summaries and diffs.
"""

import asyncio
import json
import threading
import urllib.request
from dataclasses import replace

import pytest

from repro.errors import QuotaExceededError
from repro.experiments import registry
from repro.service import CampaignService, TenantQuota
from repro.service.client import ServiceClient
from repro.service.jobs import Job, JobRequest
from repro.service.quota import QuotaLedger
from repro.service.scheduler import CacheAwareScheduler
from repro.service.server import ServiceServer
from repro.telemetry.metrics import (
    diff_snapshots,
    get_registry,
    histogram_quantile,
    parse_prometheus,
)
from repro.telemetry.perfetto import spans_from_log_events, stitch_trace
from repro.telemetry.report import diff_runs, summarize
from repro.telemetry.runlog import read_run
from repro.telemetry.spans import SpanRecord
from repro.traces.store_backends import CacheServer

from tests.test_service import TINY_KW, make_service

TINY_FIG5 = {
    "placements": ("P6",),
    "n_traces": 512,
    "step": 256,
    "rating_at": 256,
}


def _tiny_config(run_dir, workers=1, seed=7, **overrides):
    return registry.ExperimentConfig(
        scale="quick",
        seed=seed,
        workers=workers,
        shard_size=128,
        options=dict(TINY_FIG5, **overrides),
        run_dir=str(run_dir),
    )


@pytest.fixture(scope="module")
def fleet_runs(tmp_path_factory):
    """The same tiny fig5 campaign at 1 and 2 workers."""
    root = tmp_path_factory.mktemp("fleet-runs")
    registry.run("fig5", _tiny_config(root / "w1", workers=1))
    registry.run("fig5", _tiny_config(root / "w2", workers=2))
    return root


# ----------------------------------------------------------------------
# Perfetto stitching invariants.
# ----------------------------------------------------------------------


def _span_event(name, start, seconds, pid, **attrs):
    return {
        "type": "span",
        "name": name,
        "start": start,
        "seconds": seconds,
        "attrs": attrs,
        "counters": {},
        "pid": pid,
    }


class TestPerfettoStitching:
    def test_spans_from_log_events_rebuilds_flat_records(self):
        events = [
            {"type": "run_start", "experiment": "fig5"},
            _span_event("run.fig5", 100.0, 2.0, 41),
            _span_event("shard", 100.5, 0.5, 42),
            {"type": "metrics", "metrics": {}},
        ]
        records = spans_from_log_events(events)
        assert [r.name for r in records] == ["run.fig5", "shard"]
        assert [r.pid for r in records] == [41, 42]
        assert all(not r.children for r in records)
        assert records[0].start == 100.0 and records[0].seconds == 2.0

    def test_trace_id_filter_drops_foreign_keeps_unlabelled(self):
        events = [
            _span_event("mine", 1.0, 0.1, 1, trace_id="job-a"),
            _span_event("theirs", 1.0, 0.1, 1, trace_id="job-b"),
            _span_event("shard", 1.2, 0.1, 2),  # per-run file: no id
        ]
        names = [r.name for r in spans_from_log_events(events, "job-a")]
        assert names == ["mine", "shard"]
        # Without a filter everything is kept.
        assert len(spans_from_log_events(events)) == 3

    def test_stitched_trace_shares_one_origin(self, tmp_path):
        engine = [
            SpanRecord(name="run.fig5", start=50.0, seconds=2.0),
            SpanRecord(name="shard", start=50.5, seconds=0.5),
        ]
        cache = [SpanRecord(name="cacheserver.GET", start=49.0, seconds=0.2)]
        for rec, pid in zip(engine, (10, 11)):
            rec.pid = pid
        cache[0].pid = 20
        out = stitch_trace(tmp_path / "t.json", [engine, cache])
        spans = [
            e
            for e in json.loads(out.read_text())["traceEvents"]
            if e["ph"] == "X"
        ]
        # Re-based against the global earliest span (the cache request).
        by_name = {e["name"]: e for e in spans}
        assert by_name["cacheserver.GET"]["ts"] == 0.0
        assert by_name["run.fig5"]["ts"] == pytest.approx(1.0 * 1e6)
        assert by_name["shard"]["ts"] == pytest.approx(1.5 * 1e6)
        assert all(e["dur"] >= 0 for e in spans)

    def test_stitched_trace_pid_tid_and_metadata(self, tmp_path):
        a = SpanRecord(name="one", start=1.0, seconds=0.1)
        b = SpanRecord(name="two", start=1.1, seconds=0.1)
        a.pid = b.pid = 7  # same pid appears in both groups
        out = stitch_trace(
            tmp_path / "t.json", [[a], [b]], process_names={7: "engine w1"}
        )
        events = json.loads(out.read_text())["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(meta) == 1  # deduped across groups
        assert meta[0]["args"]["name"] == "engine w1"
        spans = [e for e in events if e["ph"] == "X"]
        assert all(e["pid"] == e["tid"] == 7 for e in spans)

    def test_cache_trace_log_lines_stitch_directly(self, tmp_path):
        """The server's JSONL trace-log lines are valid span events."""
        srv = CacheServer(tmp_path / "store", port=0,
                          trace_log=tmp_path / "trace.jsonl")
        try:
            srv.log_trace_span("GET", "/v1/blocks/abc", 10.0, 0.01, 200,
                               "job-000001-aaaa")
        finally:
            srv.server_close()
        lines = [
            json.loads(line)
            for line in (tmp_path / "trace.jsonl").read_text().splitlines()
        ]
        records = spans_from_log_events(lines, "job-000001-aaaa")
        assert [r.name for r in records] == ["cacheserver.GET"]
        assert records[0].attrs["proc"] == "cache-server"
        assert records[0].attrs["status"] == 200
        # A different trace id filters the request out.
        assert spans_from_log_events(lines, "job-000002-bbbb") == []


# ----------------------------------------------------------------------
# Cache server: counters vs concurrent /metrics scrapes.
# ----------------------------------------------------------------------


class TestConcurrentScrape:
    def test_counters_exact_under_concurrent_scrapes(self, tmp_path):
        """count() must not lose increments while /metrics is scraped.

        Regression test for the counter lock: four writer threads bang
        on ``count()`` while scraper threads pull ``/metrics`` and
        ``/v1/stats`` over HTTP the whole time; the final totals must
        be exact, and the registry mirror must agree with the server's
        own counters.
        """
        registry_before = get_registry().snapshot()
        with CacheServer(tmp_path / "store", port=0) as srv:
            stop = threading.Event()
            scrape_errors = []

            def scrape():
                while not stop.is_set():
                    try:
                        for route in ("/metrics", "/v1/stats"):
                            with urllib.request.urlopen(
                                srv.url + route, timeout=5
                            ) as resp:
                                resp.read()
                    except Exception as exc:  # noqa: BLE001
                        scrape_errors.append(exc)
                        return

            def write(n):
                for _ in range(n):
                    srv.count("gets", bytes_out=10)

            scrapers = [threading.Thread(target=scrape) for _ in range(2)]
            writers = [
                threading.Thread(target=write, args=(500,)) for _ in range(4)
            ]
            for t in scrapers + writers:
                t.start()
            for t in writers:
                t.join()
            stop.set()
            for t in scrapers:
                t.join()
            assert not scrape_errors
            stats = srv.stats_payload()["counters"]
            exposition = srv.metrics_exposition()
        assert stats["gets"] == 2000
        assert stats["bytes_out"] == 2000 * 10
        # The registry mirror saw every increment too (scrapes landed
        # GET requests of their own, so compare the mirrored deltas).
        delta = diff_snapshots(registry_before, get_registry().snapshot())
        counters = delta["counters"]
        assert counters['repro_cache_server_requests_total{kind="gets"}'] == 2000
        assert (
            counters['repro_cache_server_bytes_total{direction="out"}']
            == 2000 * 10
        )
        # And the scraped exposition parses back to the same numbers.
        parsed = parse_prometheus(exposition)
        assert (
            parsed['repro_cache_server_requests_total{kind="gets"}'] >= 2000
        )


# ----------------------------------------------------------------------
# Service observability: queue depths, metrics op, trace ids, quotas.
# ----------------------------------------------------------------------


def _job(tenant, seed, job_id):
    request = JobRequest(tenant=tenant, experiment="fig5", seed=seed)
    return Job(
        id=job_id,
        request=request,
        key=request.job_key(),
        footprint=request.cache_footprint(),
    )


class TestServiceObservability:
    def test_scheduler_reports_queued_by_tenant(self):
        scheduler = CacheAwareScheduler(QuotaLedger())
        assert scheduler.queued_by_tenant() == {}
        for i in range(3):
            scheduler.submit(_job("alice", i, f"job-a{i}"))
        scheduler.submit(_job("bob", 9, "job-b0"))
        assert scheduler.queued_by_tenant() == {"alice": 3, "bob": 1}
        assert scheduler.pending_count() == 4
        scheduler.next_job()
        by_tenant = scheduler.queued_by_tenant()
        assert sum(by_tenant.values()) == 3  # empty queues are omitted

    def test_stats_and_ping_carry_queue_depths(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path)
            await service.start()
            job = await service.submit("alice", "fig5", seed=7, **TINY_KW)
            await service.join(job.id)
            stats = service.stats()
            await service.stop()
            return stats

        stats = asyncio.run(scenario())
        assert stats["pending"] == 0
        assert stats["queued_by_tenant"] == {}
        assert stats["jobs"]["completed"] == 1

    def test_jobs_get_trace_ids_and_coalescing_inherits(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path)
            await service.start()
            # Back-to-back submissions: no await point runs the worker
            # in between, so the second coalesces into the first.
            first = await service.submit("alice", "fig5", seed=7, **TINY_KW)
            second = await service.submit("bob", "fig5", seed=7, **TINY_KW)
            await service.join(first.id)
            await service.join(second.id)
            await service.stop()
            return first.snapshot(), second.snapshot()

        first, second = asyncio.run(scenario())
        assert first["trace_id"].startswith(first["id"])
        assert second["coalesced_into"] == first["id"]
        # The coalesced follower shares the primary's trace id: one
        # acquisition, one stitched timeline.
        assert second["trace_id"] == first["trace_id"]

    def test_run_log_span_carries_job_trace_id(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path)
            await service.start()
            job = await service.submit("alice", "fig5", seed=7, **TINY_KW)
            await service.join(job.id)
            snap = job.snapshot()
            await service.stop()
            return snap

        snap = asyncio.run(scenario())
        record = read_run(snap["result"]["run_dir"])
        run_span = next(
            e for e in record.spans if e["name"].startswith("run.")
        )
        assert run_span["attrs"]["trace_id"] == snap["trace_id"]
        # Stitch filter keyed by that id keeps the whole run file.
        assert spans_from_log_events(record.events, snap["trace_id"])

    def test_quota_rejections_counted(self):
        before = get_registry().snapshot()

        async def scenario():
            service = make_service(quota=TenantQuota(max_active=1))
            await service.start()
            job = await service.submit("alice", "fig5", seed=1, **TINY_KW)
            with pytest.raises(QuotaExceededError):
                await service.submit("alice", "fig5", seed=2, **TINY_KW)
            await service.join(job.id)
            await service.stop()

        asyncio.run(scenario())
        delta = diff_snapshots(before, get_registry().snapshot())
        assert (
            delta["counters"][
                'repro_service_quota_rejections_total{tenant="alice"}'
            ]
            == 1
        )

    def test_metrics_op_over_socket(self, tmp_path):
        socket_path = str(tmp_path / "svc.sock")

        async def scenario():
            service = CampaignService(
                workers=1,
                cache_dir=str(tmp_path / "cache"),
                run_root=str(tmp_path / "runs"),
            )
            server = ServiceServer(service, socket_path)
            await server.start()
            out = {}

            def client_side():
                client = ServiceClient(socket_path)
                list(
                    client.submit_and_watch(
                        "alice", "fig5", seed=7, **TINY_KW
                    )
                )
                out["metrics"] = client.metrics()
                out["ping"] = client.ping()

            thread = threading.Thread(target=client_side)
            thread.start()
            while thread.is_alive():
                await asyncio.sleep(0.01)
            thread.join()
            await server.close()
            return out

        out = asyncio.run(scenario())
        snapshot = out["metrics"]["metrics"]
        counters = snapshot["counters"]
        assert counters.get('repro_service_jobs_total{state="completed"}')
        # The exposition parses and agrees with the JSON snapshot.
        parsed = parse_prometheus(out["metrics"]["prometheus"])
        for series, value in counters.items():
            assert parsed[series] == value
        assert "queued_by_tenant" in out["ping"]


# ----------------------------------------------------------------------
# metrics_snapshot determinism + report quantiles.
# ----------------------------------------------------------------------


class TestMetricsSnapshotContract:
    def test_deterministic_snapshot_identical_across_worker_counts(
        self, fleet_runs
    ):
        """The run log's deterministic delta is a function of config +
        seed only — byte-identical at 1 and 2 workers."""
        snaps = {
            label: read_run(fleet_runs / label).one("metrics_snapshot")
            for label in ("w1", "w2")
        }
        det_w1 = snaps["w1"]["snapshot"]
        det_w2 = snaps["w2"]["snapshot"]
        assert json.dumps(det_w1, sort_keys=True) == json.dumps(
            det_w2, sort_keys=True
        )
        counters = det_w1["counters"]
        assert counters['repro_engine_items_total{kind="stream"}'] == 512
        assert counters['repro_engine_shards_total{kind="stream"}'] == 4
        # Gauges and wall-clock histograms never qualify.
        assert det_w1["gauges"] == {}
        assert all(
            not name.startswith("repro_engine_shard_seconds")
            for name in det_w1["histograms"]
        )

    def test_full_snapshot_records_shard_latency(self, fleet_runs):
        full = read_run(fleet_runs / "w1").one("metrics_snapshot")["full"]
        hist = full["histograms"]["repro_engine_shard_seconds"]
        assert hist["count"] == 4  # one observation per shard
        assert sum(hist["counts"]) == hist["count"]

    def test_summary_lines_render_latency_quantiles(self, fleet_runs):
        summary = summarize(fleet_runs / "w1")
        latency_lines = [
            line for line in summary.lines() if "latency" in line
        ]
        assert any(
            "repro_engine_shard_seconds" in line for line in latency_lines
        )
        assert all(
            "p50=" in line and "p95=" in line and "p99=" in line
            for line in latency_lines
        )

    def test_diff_flags_latency_quantile_regression(self, fleet_runs):
        base = summarize(fleet_runs / "w1")
        # Same run with one histogram shifted one bucket ladder up —
        # a pure p50/p95/p99 regression with identical results.
        hist = base.histograms["repro_engine_shard_seconds"]
        shifted = dict(
            hist,
            counts=[0, 0] + list(hist["counts"][:-2]),
            sum=hist["sum"] * 16.0,
        )
        slow = replace(
            base,
            histograms=dict(
                base.histograms, repro_engine_shard_seconds=shifted
            ),
        )
        report = diff_runs(base, slow, threshold=0.2, min_seconds=0.0)
        quantile_verdicts = {
            v.metric: v.kind
            for v in report.verdicts
            if v.metric.endswith("repro_engine_shard_seconds")
        }
        assert quantile_verdicts == {
            "p50:repro_engine_shard_seconds": "regression",
            "p95:repro_engine_shard_seconds": "regression",
            "p99:repro_engine_shard_seconds": "regression",
        }
        # Diffing a run against itself stays quiet.
        clean = diff_runs(base, base, min_seconds=0.0)
        assert all(v.kind == "ok" for v in clean.verdicts)

    def test_quantiles_method_matches_histogram_quantile(self, fleet_runs):
        summary = summarize(fleet_runs / "w1")
        series = "repro_engine_shard_seconds"
        got = summary.quantiles(series)
        hist = summary.histograms[series]
        assert got == {
            "p50": histogram_quantile(hist, 0.5),
            "p95": histogram_quantile(hist, 0.95),
            "p99": histogram_quantile(hist, 0.99),
        }
