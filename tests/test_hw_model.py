"""Tests for the AES hardware power model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.timing.sampling import ClockSpec
from repro.victims.aes import AES128, AESHardwareModel
from repro.victims.aes.sbox import HW8

KEY = bytes(range(16))


@pytest.fixture(scope="module")
def model():
    return AESHardwareModel(ClockSpec(20e6), ClockSpec(300e6))


@pytest.fixture(scope="module")
def aes():
    return AES128(KEY)


class TestClocks:
    def test_samples_per_cycle(self, model):
        assert model.samples_per_cycle == 15

    def test_samples_per_block(self, model):
        assert model.samples_per_block == 11 * 15

    def test_paper_frequency_grid(self):
        for freq, spc in ((20e6, 15), (33.333e6, 9), (50e6, 6), (100e6, 3)):
            m = AESHardwareModel(ClockSpec(freq), ClockSpec(300e6))
            assert m.samples_per_cycle == spc

    def test_sensor_slower_than_aes_rejected(self):
        with pytest.raises(ConfigurationError):
            AESHardwareModel(ClockSpec(300e6), ClockSpec(20e6))


class TestHammingDistances:
    def test_shape(self, model, aes, rng):
        pts = rng.integers(0, 256, (7, 16), dtype=np.uint8)
        hd = model.cycle_hamming_distances(aes, pts)
        assert hd.shape == (7, 11)

    def test_load_cycle_is_hw_of_k0(self, model, aes, rng):
        """Chained plaintexts make the load transition
        pt -> pt ^ k0, whose HD is the constant HW(k0)."""
        pts = rng.integers(0, 256, (5, 16), dtype=np.uint8)
        hd = model.cycle_hamming_distances(aes, pts)
        expected = int(HW8[aes.round_keys[0]].sum())
        assert np.all(hd[:, 0] == expected)

    def test_round_hd_matches_states(self, model, aes, rng):
        pts = rng.integers(0, 256, (3, 16), dtype=np.uint8)
        states = aes.round_states(pts)
        hd = model.cycle_hamming_distances(aes, pts)
        manual = HW8[states[:, 4] ^ states[:, 5]].sum(axis=1)
        np.testing.assert_array_equal(hd[:, 5], manual)

    def test_explicit_previous_final(self, model, aes):
        pts = np.zeros((1, 16), dtype=np.uint8)
        prev = np.zeros((1, 16), dtype=np.uint8)
        hd = model.cycle_hamming_distances(aes, pts, previous_final=prev)
        expected = int(HW8[aes.round_keys[0]].sum())  # 0 -> 0^k0
        assert hd[0, 0] == expected

    def test_bad_previous_shape_rejected(self, model, aes):
        pts = np.zeros((2, 16), dtype=np.uint8)
        with pytest.raises(ConfigurationError):
            model.cycle_hamming_distances(aes, pts, previous_final=np.zeros((3, 16)))

    def test_hd_range(self, model, aes, rng):
        pts = rng.integers(0, 256, (50, 16), dtype=np.uint8)
        hd = model.cycle_hamming_distances(aes, pts)
        assert hd.min() >= 0
        assert hd.max() <= 128

    def test_round_hd_near_64_on_average(self, model, aes, rng):
        """Random round transitions flip about half the 128 bits."""
        pts = rng.integers(0, 256, (200, 16), dtype=np.uint8)
        hd = model.cycle_hamming_distances(aes, pts)
        assert abs(hd[:, 1:].mean() - 64) < 2


class TestCurrentWaveform:
    def test_shape_default(self, model, aes, rng):
        pts = rng.integers(0, 256, (4, 16), dtype=np.uint8)
        hd = model.cycle_hamming_distances(aes, pts)
        wave = model.current_waveform(hd)
        assert wave.shape == (4, 13 * 15)

    def test_explicit_length(self, model, aes, rng):
        pts = rng.integers(0, 256, (4, 16), dtype=np.uint8)
        hd = model.cycle_hamming_distances(aes, pts)
        assert model.current_waveform(hd, n_samples=100).shape == (4, 100)

    def test_lead_in_is_base_current(self, model, aes, rng):
        pts = rng.integers(0, 256, (2, 16), dtype=np.uint8)
        hd = model.cycle_hamming_distances(aes, pts)
        wave = model.current_waveform(hd, lead_in_cycles=2)
        base = model.constants.aes_base_current
        np.testing.assert_allclose(wave[:, : 2 * 15], base)

    def test_cycle_current_proportional_to_hd(self, model, aes):
        hd = np.zeros((1, 11))
        hd[0, 5] = 100
        wave = model.current_waveform(hd, lead_in_cycles=0)
        c = model.constants
        peak = c.aes_base_current + 100 * c.aes_current_per_bit
        assert wave[0, 5 * 15] == pytest.approx(peak)
        assert wave[0, 4 * 15] == pytest.approx(c.aes_base_current)

    def test_held_for_whole_cycle(self, model, aes):
        hd = np.zeros((1, 11))
        hd[0, 3] = 50
        wave = model.current_waveform(hd, lead_in_cycles=0)
        cycle = wave[0, 3 * 15 : 4 * 15]
        assert np.all(cycle == cycle[0])

    def test_bad_hd_shape_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.current_waveform(np.zeros((2, 10)))
