"""Tests for the acquisition transport model."""

import pytest

from repro.errors import AcquisitionError
from repro.timing.sampling import ClockSpec
from repro.traces.transport import (
    AcquisitionPlan,
    CaptureBuffer,
    UART_FRAME_BITS,
    UartLink,
)


class TestUartLink:
    def test_framing_overhead(self):
        link = UartLink(baud=115_200)
        assert link.payload_bytes_per_second == pytest.approx(11_520)

    def test_transfer_time(self):
        link = UartLink(baud=1_000_000)
        assert link.transfer_time(100_000) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(AcquisitionError):
            UartLink(baud=0)
        with pytest.raises(AcquisitionError):
            UartLink().transfer_time(-1)


class TestCaptureBuffer:
    def test_fits(self):
        buf = CaptureBuffer(depth=2048)
        assert buf.fits(2048)
        assert not buf.fits(2049)
        assert not buf.fits(0)

    def test_window_bytes(self):
        buf = CaptureBuffer(depth=4096, bytes_per_sample=2)
        assert buf.window_bytes(100) == 200

    def test_overflow_rejected(self):
        with pytest.raises(AcquisitionError):
            CaptureBuffer(depth=64).window_bytes(65)

    def test_validation(self):
        with pytest.raises(AcquisitionError):
            CaptureBuffer(depth=0)


class TestAcquisitionPlan:
    @pytest.fixture()
    def plan(self):
        return AcquisitionPlan(
            link=UartLink(baud=921_600),
            buffer=CaptureBuffer(depth=4096),
            sensor_clock=ClockSpec(300e6),
            aes_clock=ClockSpec(20e6),
            window_samples=195,
        )

    def test_drain_dominates_capture(self, plan):
        """The UART drain, not the on-chip capture, bounds throughput —
        the physical reason campaigns take minutes."""
        assert plan.drain_time > 100 * plan.capture_time

    def test_time_per_trace_sums_components(self, plan):
        assert plan.time_per_trace == pytest.approx(
            plan.capture_time + plan.drain_time + plan.handshake_time
        )

    def test_campaign_scales_linearly(self, plan):
        assert plan.campaign_time(1000) == pytest.approx(1000 * plan.time_per_trace)

    def test_sixty_k_campaign_is_minutes(self, plan):
        """A 60 k-trace campaign (Table I's budget) lands in the
        minutes regime on UART-class links — consistent with these
        attacks being practical but not instantaneous."""
        slow = AcquisitionPlan(
            link=UartLink(baud=115_200),
            buffer=plan.buffer,
            sensor_clock=plan.sensor_clock,
            aes_clock=plan.aes_clock,
            window_samples=plan.window_samples,
        )
        assert 5 < slow.campaign_time(60_000) / 60 < 120
        assert 1 < plan.campaign_time(60_000) / 60 < 30

    def test_faster_link_speeds_campaign(self, plan):
        fast = AcquisitionPlan(
            link=UartLink(baud=12_000_000),
            buffer=plan.buffer,
            sensor_clock=plan.sensor_clock,
            aes_clock=plan.aes_clock,
            window_samples=plan.window_samples,
        )
        assert fast.time_per_trace < plan.time_per_trace

    def test_window_must_fit_buffer(self):
        with pytest.raises(AcquisitionError):
            AcquisitionPlan(
                link=UartLink(),
                buffer=CaptureBuffer(depth=64),
                sensor_clock=ClockSpec(300e6),
                aes_clock=ClockSpec(20e6),
                window_samples=195,
            )

    def test_describe(self, plan):
        text = plan.describe(60_000)
        assert "60000 traces" in text
        assert "min" in text
