"""Tests for repro.config: RNG plumbing and physical constants."""

import dataclasses

import numpy as np
import pytest

from repro.config import (
    DEFAULT_CONSTANTS,
    PhysicalConstants,
    SimulationConfig,
    make_rng,
)


class TestMakeRng:
    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(make_rng(1).random(5), make_rng(2).random(5))

    def test_generator_passes_through_unchanged(self):
        g = np.random.default_rng(7)
        assert make_rng(g) is g

    def test_threading_one_generator_advances_state(self):
        g = make_rng(0)
        first = make_rng(g).random()
        second = make_rng(g).random()
        assert first != second


class TestPhysicalConstants:
    def test_defaults_are_sane(self):
        c = DEFAULT_CONSTANTS
        assert c.v_nominal > 0
        assert c.alpha > 1.0
        assert 0 < c.coupling_floor < 1
        assert c.pdn_tau > 0
        assert c.dsp_block_delay > c.tdc_stage_delay

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_CONSTANTS.alpha = 2.0

    def test_override_via_replace(self):
        c = dataclasses.replace(DEFAULT_CONSTANTS, alpha=1.5)
        assert c.alpha == 1.5
        assert DEFAULT_CONSTANTS.alpha != 1.5

    def test_custom_instance_independent(self):
        c = PhysicalConstants(v_nominal=0.85)
        assert c.v_nominal == 0.85
        assert DEFAULT_CONSTANTS.v_nominal == 1.0


class TestSimulationConfig:
    def test_rng_uses_seed(self):
        a = SimulationConfig(seed=5).rng().random(3)
        b = SimulationConfig(seed=5).rng().random(3)
        np.testing.assert_array_equal(a, b)

    def test_default_constants_attached(self):
        cfg = SimulationConfig()
        assert cfg.constants.v_nominal == DEFAULT_CONSTANTS.v_nominal

    def test_none_seed_allowed(self):
        cfg = SimulationConfig(seed=None)
        assert isinstance(cfg.rng(), np.random.Generator)
