"""Property-based tests (hypothesis) for the core data structures and
invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.key_rank import key_rank_bounds
from repro.fpga.primitives import DSP48E1, LUT, to_signed, to_unsigned
from repro.timing.delay import delay_scale
from repro.timing.sampling import capture_probability
from repro.victims.aes.core import AES128, SHIFT_ROWS_IDX, mix_columns, shift_rows
from repro.victims.aes.key_schedule import expand_key, invert_key_schedule
from repro.victims.aes.sbox import HW8, gf_mul

bytes16 = st.lists(st.integers(0, 255), min_size=16, max_size=16)


class TestTwosComplement:
    @given(st.integers(-(2**24), 2**24 - 1), st.sampled_from([25, 27, 48]))
    def test_roundtrip(self, value, bits):
        assert to_signed(to_unsigned(value, bits), bits) == value

    @given(st.integers(0, 2**25 - 1))
    def test_unsigned_is_masked(self, value):
        assert 0 <= to_unsigned(value, 25) < 2**25


class TestGFAlgebra:
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=50)
    def test_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=50)
    def test_distributes_over_xor(self, a, b, c):
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)

    @given(st.integers(0, 255))
    def test_closed(self, a):
        assert 0 <= gf_mul(a, 0x1B) < 256


class TestAESProperties:
    @given(bytes16, bytes16)
    @settings(max_examples=30, deadline=None)
    def test_key_schedule_inverts(self, key, _unused):
        key = np.array(key, dtype=np.uint8)
        k10 = expand_key(key)[10]
        np.testing.assert_array_equal(invert_key_schedule(k10), key)

    @given(bytes16, bytes16)
    @settings(max_examples=30, deadline=None)
    def test_encryption_is_injective_in_plaintext(self, key, pt):
        aes = AES128(np.array(key, dtype=np.uint8))
        pt = np.array(pt, dtype=np.uint8)
        pt2 = pt.copy()
        pt2[0] ^= 1
        assert aes.encrypt(pt) != aes.encrypt(pt2)

    @given(bytes16)
    @settings(max_examples=30, deadline=None)
    def test_shift_rows_preserves_multiset(self, state):
        s = np.array(state, dtype=np.uint8)[None, :]
        out = shift_rows(s)[0]
        assert sorted(out.tolist()) == sorted(state)

    @given(bytes16)
    @settings(max_examples=30, deadline=None)
    def test_mix_columns_is_linear(self, state):
        s = np.array(state, dtype=np.uint8)[None, :]
        zero = np.zeros_like(s)
        a = mix_columns(s)
        b = mix_columns(s ^ s)  # = MC(0)
        np.testing.assert_array_equal(b, mix_columns(zero))
        # Linearity over GF(2): MC(x) ^ MC(y) == MC(x ^ y).
        rng = np.random.default_rng(HW8[s[0]].sum())
        t = rng.integers(0, 256, (1, 16), dtype=np.uint8)
        np.testing.assert_array_equal(
            mix_columns(s) ^ mix_columns(t), mix_columns(s ^ t)
        )

    @given(bytes16, bytes16)
    @settings(max_examples=20, deadline=None)
    def test_round_state_chain_consistency(self, key, pt):
        """Ciphertext from round_states always equals encrypt_blocks."""
        aes = AES128(np.array(key, dtype=np.uint8))
        pt = np.array(pt, dtype=np.uint8)[None, :]
        states = aes.round_states(pt)
        np.testing.assert_array_equal(states[:, 10], aes.encrypt_blocks(pt))

    @given(bytes16, bytes16)
    @settings(max_examples=20, deadline=None)
    def test_last_round_hypothesis_identity(self, key, pt):
        """The CPA's algebra holds for every key/plaintext pair."""
        from repro.victims.aes.sbox import INV_SBOX

        aes = AES128(np.array(key, dtype=np.uint8))
        states = aes.round_states(np.array(pt, dtype=np.uint8)[None, :])
        s9, ct = states[0, 9], states[0, 10]
        k10 = aes.round_keys[10]
        for j in range(16):
            partner = int(SHIFT_ROWS_IDX[j])
            predicted = INV_SBOX[ct[j] ^ k10[j]]
            assert predicted == s9[partner]


class TestDSPProperties:
    @given(st.integers(0, 2**25 - 1), st.integers(0, 2**18 - 1))
    @settings(max_examples=100)
    def test_identity_config_multiplies_correctly(self, a, b):
        dsp = DSP48E1.leakydsp_config("d")
        p = dsp.compute(a=a, b=b)
        expected = to_unsigned(to_signed(a, 25) * to_signed(b, 18), 48)
        assert p == expected

    @given(st.integers(0, 2**25 - 1))
    @settings(max_examples=100)
    def test_identity_chain_closure(self, a):
        """Any value fed through the LeakyDSP chain config with B=1
        comes back unchanged in the low word — the cascade invariant."""
        dsp = DSP48E1.leakydsp_config("d")
        mask = (1 << 25) - 1
        value = a
        for _ in range(3):
            value = dsp.compute(a=value, b=1) & mask
        assert value == a & mask


class TestDSPGoldenModel:
    """Cross-check the DSP48E1 functional model against an independent
    naive evaluation of the datapath for randomized configurations."""

    @given(
        st.integers(0, 2**30 - 1),
        st.integers(0, 2**18 - 1),
        st.integers(0, 2**48 - 1),
        st.integers(0, 2**25 - 1),
        st.sampled_from([0b0000101, 0b0110101, 0b0010101]),
        st.sampled_from(["TRUE", "FALSE"]),
        st.sampled_from([0b0000, 0b0011]),
    )
    @settings(max_examples=120)
    def test_against_naive_reference(self, a, b, c, d, opmode, dport, alumode):
        dsp = DSP48E1(
            "d", USE_MULT="MULTIPLY", USE_DPORT=dport,
            OPMODE=opmode, ALUMODE=alumode,
        )
        pcin = 12345
        got = dsp.compute(a=a, b=b, c=c, d=d, pcin=pcin)

        # Naive reference, straight from the UG479 dataflow.
        a25 = to_signed(a, 25)
        ad = to_signed((to_signed(d, 25) + a25) & ((1 << 25) - 1), 25) \
            if dport == "TRUE" else a25
        m = ad * to_signed(b, 18)
        z = {0b000: 0, 0b011: to_signed(c, 48), 0b001: to_signed(pcin, 48)}[
            (opmode >> 4) & 0b111
        ]
        result = z + m if alumode == 0b0000 else z - m
        assert got == result & ((1 << 48) - 1)


class TestLUTProperties:
    @given(st.integers(1, 4), st.data())
    @settings(max_examples=50)
    def test_truth_table_consistency(self, k, data):
        init = data.draw(st.integers(0, (1 << (1 << k)) - 1))
        lut = LUT("l", k=k, init=init)
        for pattern in range(1 << k):
            bits = [(pattern >> i) & 1 for i in range(k)]
            assert lut.evaluate(*bits) == (init >> pattern) & 1


class TestTimingProperties:
    @given(st.floats(0.7, 1.2))
    def test_delay_scale_positive(self, v):
        assert delay_scale(v) > 0

    @given(st.floats(0.7, 1.19))
    def test_delay_scale_monotone(self, v):
        assert delay_scale(v) > delay_scale(v + 0.01)

    @given(
        st.floats(0, 5e-9),
        st.floats(0, 5e-9),
        st.floats(1e-12, 100e-12),
    )
    def test_capture_probability_in_unit_interval(self, tau, phi, w):
        p = capture_probability(tau, phi, w)
        assert 0.0 <= p <= 1.0

    @given(st.floats(1e-12, 50e-12))
    def test_capture_symmetric_at_zero_slack(self, w):
        assert capture_probability(1e-9, 1e-9, w) == pytest.approx(0.5)


class TestKeyRankProperties:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_bounds_ordered_and_in_range(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.normal(0, 1, (16, 256))
        true = rng.integers(0, 256, 16)
        lo, hi = key_rank_bounds(scores, true)
        assert 0.0 <= lo <= hi <= 128.0

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_boosting_true_scores_never_hurts(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.normal(0, 1, (16, 256))
        true = rng.integers(0, 256, 16)
        _, hi_before = key_rank_bounds(scores, true)
        boosted = scores.copy()
        boosted[np.arange(16), true] += 3.0
        _, hi_after = key_rank_bounds(boosted, true)
        assert hi_after <= hi_before + 1.0
