"""Integration smoke tests: every experiment module runs at tiny scale
and reproduces the paper's qualitative shape."""

import numpy as np
import pytest

from repro.experiments import (
    ablation_calib,
    ablation_chain,
    common,
    defense_study,
    fig3_sensitivity,
    fig4_placement,
    fig5_keyrank,
    fig6_frequency,
    fig7_covert,
    pdn_validation,
    sensor_zoo,
    table1_traces,
)


class TestCommon:
    def test_basys3_setup(self):
        setup = common.Basys3Setup.create()
        assert setup.device.name == "xc7a35t"
        assert setup.coupling.device is setup.device

    def test_axu3egb_setup(self):
        setup = common.AXU3EGBSetup.create()
        assert setup.device.name == "zu3eg"

    def test_victim_pblocks_fit_virus(self):
        setup = common.Basys3Setup.create()
        virus = common.make_virus(setup)  # must not raise
        assert virus.positions.shape == (8000, 2)

    def test_all_fig4_regions_resolvable(self):
        setup = common.Basys3Setup.create()
        for index in common.FIG4_REGIONS:
            pb = common.region_pblock(setup.device, index)
            assert pb.x0 <= pb.x1

    def test_all_cpa_placements_resolvable(self):
        setup = common.Basys3Setup.create()
        for name in common.CPA_PLACEMENTS:
            pb = common.placement_pblock(setup.device, name)
            assert pb.x0 <= pb.x1

    def test_p7_p8_are_subboxes(self):
        setup = common.Basys3Setup.create()
        full = common.placement_pblock(setup.device, "P2")
        p7 = common.placement_pblock(setup.device, "P7")
        assert (p7.x1 - p7.x0) < (full.x1 - full.x0)

    def test_sensor_builders(self):
        setup = common.Basys3Setup.create()
        pb = common.placement_pblock(setup.device, "P6")
        sensor = common.make_leakydsp(setup, pb)
        tdc = common.make_tdc(setup, pb)
        assert sensor.position is not None
        assert tdc.position is not None

    def test_last_round_window(self):
        hw = common.make_hw_model()
        window = common.last_round_window(hw, 195)
        assert window == (135, 195)


class TestFig3:
    def test_shape_matches_paper(self):
        result = fig3_sensitivity.run(n_readouts=300)
        dsp = result.curves["LeakyDSP"]
        tdc = result.curves["TDC"]
        # Strong negative linear relationship for both sensors ...
        assert dsp.pearson_r < -0.9
        assert tdc.pearson_r < -0.97
        # ... and LeakyDSP is finer-grained (paper: -3.45 vs -1.09).
        assert abs(dsp.regression_coefficient) > 2 * abs(tdc.regression_coefficient)

    def test_rows_render(self):
        result = fig3_sensitivity.run(n_readouts=100)
        assert len(result.rows()) == 2


class TestFig4:
    def test_shape_matches_paper(self):
        result = fig4_placement.run(n_readouts=300, include_tdc=False)
        points = result.points["LeakyDSP"]
        assert len(points) == 6
        assert all(p.delta > 2 for p in points)  # sensed everywhere
        assert result.best_region("LeakyDSP") == 2
        deltas = {p.region_index: p.delta for p in points}
        assert min(deltas[5], deltas[6]) < deltas[2]


class TestTable1:
    def test_best_placement_breaks_key(self):
        result = table1_traces.run(
            placements=("P6",), n_traces=25_000, step=5_000, include_tdc=False
        )
        row = result.rows[0]
        assert row.traces_to_break is not None
        assert row.traces_to_break <= 25_000

    def test_formatted_table(self):
        result = table1_traces.run(
            placements=("P6",), n_traces=15_000, step=5_000, include_tdc=False
        )
        lines = result.formatted()
        assert "placement" in lines[0]
        assert any("P6" in l for l in lines)


class TestFig5:
    def test_rank_decreases_with_traces(self):
        result = fig5_keyrank.run(
            placements=("P6",), n_traces=20_000, step=5_000, rating_at=10_000
        )
        n, lo, hi = result.series("P6")
        assert hi[-1] < hi[0]
        assert np.all(lo <= hi)


class TestFig6:
    def test_low_frequency_easier(self):
        result = fig6_frequency.run(
            frequencies=(20e6, 100e6), n_traces=30_000, extension=0, step=5_000
        )
        low, high = result.points
        low_score = low.traces_to_break or 10**9
        high_score = high.traces_to_break or 10**9
        assert low_score <= high_score
        assert low.traces_to_break is not None


class TestFig7:
    def test_shape_matches_paper(self):
        result = fig7_covert.run(
            bit_times=(2e-3, 4e-3, 7.5e-3), payload_bits=3_000, n_runs=2
        )
        p2, p4, p75 = result.points
        assert p2.ber >= p75.ber
        assert p4.ber < 0.01
        assert p2.transmission_rate > p4.transmission_rate > p75.transmission_rate

    def test_paper_rate_at_4ms_with_10kb(self):
        result = fig7_covert.run(bit_times=(4e-3,), payload_bits=10_000, n_runs=1)
        assert result.at(4e-3).transmission_rate == pytest.approx(247.94, abs=0.01)


class TestAblations:
    def test_chain_swing_grows(self):
        result = ablation_chain.run(chain_lengths=(1, 3), n_readouts=300)
        swings = {p.n_blocks: p.activity_swing for p in result.points}
        assert swings[3] > swings[1]

    def test_calibration_rescues_dead_placements(self):
        result = ablation_calib.run(n_readouts=300)
        assert result.worst_calibrated_swing > 5.0
        assert result.worst_uncalibrated_swing < result.worst_calibrated_swing


class TestSensorZoo:
    def test_landscape(self):
        result = sensor_zoo.run(n_readouts=200)
        assert {r.sensor for r in result.rows} == {"LeakyDSP", "TDC", "RDS", "RO"}
        leaky = result.row("LeakyDSP")
        assert leaky.passes_bitstream_check
        assert leaky.dsps == 3 and leaky.luts == 0
        assert not result.row("RO").passes_bitstream_check
        assert not result.row("TDC").passes_bitstream_check

    def test_formatted_table(self):
        result = sensor_zoo.run(n_readouts=100)
        lines = result.formatted()
        assert len(lines) == 5


class TestPdnValidation:
    def test_metrics_in_range(self):
        result = pdn_validation.run(nx=17, ny=17)
        assert result.near_field_error < 0.2
        assert result.superposition_error < 1e-9
        assert 0 < result.fitted_floor < 1
        assert result.step_rise_time >= 0

    def test_formatted(self):
        result = pdn_validation.run(nx=15, ny=15)
        assert len(result.formatted()) == 5


class TestDefenseStudy:
    def test_paper_evasion_story(self):
        result = defense_study.run(fence_sizes=(500,))
        assert result.outcome("RO", False).rules_fired
        assert result.outcome("TDC", False).rules_fired
        assert not result.outcome("LeakyDSP", False).rules_fired
        assert result.outcome("LeakyDSP", True).rules_fired

    def test_fence_inflation_above_one(self):
        result = defense_study.run(fence_sizes=(2000,))
        assert result.fence[0].trace_inflation > 1.0
