"""Tests for optimal key enumeration."""

import numpy as np
import pytest

from repro.attacks.enumeration import (
    enumerate_keys,
    enumeration_rank,
    recover_key_by_enumeration,
)
from repro.errors import AttackError


def _small_scores(n_bytes=3, seed=0):
    rng = np.random.default_rng(seed)
    scores = np.zeros((n_bytes, 256))
    scores[:, :6] = rng.normal(0, 1, (n_bytes, 6))
    scores[:, 6:] = -100.0  # only 6 plausible guesses per byte
    return scores


class TestEnumerateKeys:
    def test_first_key_is_per_byte_argmax(self):
        scores = _small_scores()
        key, score = next(enumerate_keys(scores, budget=1))
        assert key == tuple(int(g) for g in scores.argmax(axis=1))
        assert score == pytest.approx(scores.max(axis=1).sum())

    def test_scores_non_increasing(self):
        scores = _small_scores()
        out = list(enumerate_keys(scores, budget=100))
        values = [s for _k, s in out]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_no_duplicates(self):
        scores = _small_scores()
        keys = [k for k, _s in enumerate_keys(scores, budget=150)]
        assert len(keys) == len(set(keys))

    def test_matches_exhaustive_order(self):
        """Against brute force over a tiny space, the lazy enumeration
        must produce exactly the score-sorted order."""
        scores = _small_scores(n_bytes=2, seed=3)
        enumerated = [
            (k, round(s, 9)) for k, s in enumerate_keys(scores, budget=36)
        ]
        exhaustive = sorted(
            (
                ((a, b), round(float(scores[0, a] + scores[1, b]), 9))
                for a in range(6)
                for b in range(6)
            ),
            key=lambda kv: -kv[1],
        )
        assert [s for _k, s in enumerated] == [s for _k, s in exhaustive]

    def test_budget_respected(self):
        assert len(list(enumerate_keys(_small_scores(), budget=17))) == 17

    def test_validation(self):
        with pytest.raises(AttackError):
            list(enumerate_keys(np.zeros((3, 99)), budget=1))
        with pytest.raises(AttackError):
            list(enumerate_keys(np.zeros((3, 256)), budget=0))


class TestEnumerationRank:
    def test_best_key_rank_one(self):
        scores = _small_scores()
        true = tuple(int(g) for g in scores.argmax(axis=1))
        assert enumeration_rank(scores, true) == 1

    def test_rank_matches_exhaustive(self):
        scores = _small_scores(n_bytes=2, seed=5)
        true = (3, 4)
        true_total = scores[0, 3] + scores[1, 4]
        better = sum(
            1
            for a in range(256)
            for b in range(256)
            if scores[0, a] + scores[1, b] > true_total
        )
        rank = enumeration_rank(scores, true, budget=1 << 16)
        assert better + 1 <= rank <= better + 2  # ties may order either way

    def test_beyond_budget_returns_none(self):
        scores = _small_scores()
        true = (5, 5, 5)  # worst plausible key
        assert enumeration_rank(scores, true, budget=3) is None

    def test_length_mismatch_rejected(self):
        with pytest.raises(AttackError):
            enumeration_rank(_small_scores(), (1, 2))


class TestCpaIntegration:
    def test_enumeration_recovers_key_cpa_misses(self):
        """Build a CPA whose best guesses are wrong in one byte but
        whose scores keep the true key within an enumerable budget —
        the scenario where rank estimation says 'enumerable' and this
        module finishes the job."""
        from repro.attacks.cpa import CPAAttack
        from repro.victims.aes.core import AES128
        from repro.victims.aes.sbox import HW8

        key = bytes(range(16))
        rng = np.random.default_rng(0)
        aes = AES128(key)
        pts = rng.integers(0, 256, (1200, 16), dtype=np.uint8)
        states = aes.round_states(pts)
        hd = HW8[states[:, 9] ^ states[:, 10]].sum(axis=1).astype(float)
        traces = (-hd + rng.normal(0, 10.0, 1200))[:, None]  # marginal SNR
        attack = CPAAttack(1)
        attack.add_traces(traces, states[:, 10])

        found = None
        for position, candidate in enumerate(
            recover_key_by_enumeration(attack, budget=2000), 1
        ):
            if bytes(candidate) == key:
                found = position
                break
        assert found is not None
