"""Tests for TVLA leakage assessment."""

import numpy as np
import pytest

from repro.analysis.tvla import (
    TVLA_THRESHOLD,
    assess_aes_leakage,
    fixed_vs_random_t,
)
from repro.core.calibration import calibrate
from repro.core.leaky_dsp import LeakyDSP
from repro.errors import AttackError
from repro.fpga.placement import Pblock, Placer
from repro.pdn.coupling import CouplingModel
from repro.timing.sampling import ClockSpec
from repro.traces.acquisition import AESTraceAcquisition
from repro.victims.aes import AESHardwareModel

KEY = bytes(range(16))


class TestFixedVsRandom:
    def test_identical_distributions_quiet(self, rng):
        a = rng.normal(0, 1, (500, 20))
        b = rng.normal(0, 1, (500, 20))
        result = fixed_vs_random_t(a, b)
        assert not result.leaks
        assert result.max_abs_t < TVLA_THRESHOLD

    def test_shifted_sample_detected(self, rng):
        a = rng.normal(0, 1, (500, 20))
        b = rng.normal(0, 1, (500, 20))
        b[:, 7] += 1.0
        result = fixed_vs_random_t(a, b)
        assert result.leaks
        assert 7 in result.leaky_samples

    def test_constant_samples_tolerated(self):
        a = np.ones((10, 3))
        b = np.ones((10, 3))
        result = fixed_vs_random_t(a, b)
        assert not result.leaks

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(AttackError):
            fixed_vs_random_t(rng.normal(0, 1, (10, 5)), rng.normal(0, 1, (10, 6)))

    def test_too_few_traces_rejected(self, rng):
        with pytest.raises(AttackError):
            fixed_vs_random_t(rng.normal(0, 1, (1, 5)), rng.normal(0, 1, (10, 5)))


class TestAesAssessment:
    @pytest.fixture(scope="class")
    def acquisition(self, basys3_device):
        coupling = CouplingModel(basys3_device)
        placer = Placer(basys3_device)
        sensor = LeakyDSP(device=basys3_device, seed=7)
        sensor.place(
            placer,
            pblock=Pblock.from_region(basys3_device.region_by_name("X1Y0")),
        )
        calibrate(sensor, rng=0)
        hw = AESHardwareModel(ClockSpec(20e6), ClockSpec(300e6))
        return AESTraceAcquisition(sensor, coupling, hw, (10.0, 25.0))

    def test_aes_core_leaks_through_sensor(self, acquisition):
        result = assess_aes_leakage(acquisition, KEY, n_traces_per_class=1500, rng=5)
        assert result.leaks
        # The leaky samples sit inside the encryption window, not the
        # idle lead-in.
        spc = acquisition.hw_model.samples_per_cycle
        assert result.leaky_samples.min() >= spc // 2

    def test_bad_fixed_plaintext_rejected(self, acquisition):
        with pytest.raises(AttackError):
            assess_aes_leakage(acquisition, KEY, fixed_plaintext=b"short", rng=0)

    def test_too_few_traces_rejected(self, acquisition):
        with pytest.raises(AttackError):
            assess_aes_leakage(acquisition, KEY, n_traces_per_class=1)
