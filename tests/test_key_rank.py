"""Tests for key-rank estimation (histogram convolution)."""

import numpy as np
import pytest

from repro.attacks.key_rank import key_rank_bounds, scores_from_correlations
from repro.errors import AttackError


def _scores_with_true_ranks(per_byte_rank, rng=None, spread=1.0):
    """Scores where the true byte (index 0 everywhere) has a known
    per-byte rank."""
    rng = rng or np.random.default_rng(0)
    scores = rng.normal(0.0, spread, (16, 256))
    true = np.zeros(16, dtype=np.intp)
    for j in range(16):
        order = np.sort(scores[j])[::-1]
        # A rank-0 byte gets a realistic margin above the runner-up (as
        # a converged CPA would produce), not an epsilon tie.
        scores[j, 0] = order[per_byte_rank[j]] + (
            0.5 * spread if per_byte_rank[j] == 0 else 0.0
        )
    return scores, true


class TestScores:
    def test_shape_preserved(self):
        rho = np.random.default_rng(0).uniform(0, 0.1, (16, 256))
        z = scores_from_correlations(rho, 1000)
        assert z.shape == (16, 256)

    def test_monotone_in_rho(self):
        rho = np.zeros((16, 256))
        rho[0, 0], rho[0, 1] = 0.02, 0.05
        z = scores_from_correlations(rho, 1000)
        assert z[0, 1] > z[0, 0]

    def test_scales_with_trace_count(self):
        rho = np.full((16, 256), 0.05)
        z1 = scores_from_correlations(rho, 100)
        z2 = scores_from_correlations(rho, 10_000)
        assert np.all(z2 > z1)

    def test_negative_rho_uses_magnitude(self):
        rho = np.zeros((16, 256))
        rho[0, 0] = -0.08
        z = scores_from_correlations(rho, 500)
        assert z[0, 0] > 0

    def test_too_few_traces_rejected(self):
        with pytest.raises(AttackError):
            scores_from_correlations(np.zeros((16, 256)), 3)

    def test_bad_shape_rejected(self):
        with pytest.raises(AttackError):
            scores_from_correlations(np.zeros((16, 99)), 100)


class TestRankBounds:
    def test_recovered_key_rank_one(self):
        scores, true = _scores_with_true_ranks([0] * 16)
        lo, hi = key_rank_bounds(scores, true)
        assert lo == 0.0
        assert hi < 12  # tight upper bound

    def test_no_information_full_space(self):
        lo, hi = key_rank_bounds(np.ones((16, 256)), np.zeros(16, dtype=np.intp))
        assert (lo, hi) == (0.0, 128.0)

    def test_bounds_ordered(self):
        rng = np.random.default_rng(1)
        scores = rng.normal(0, 1, (16, 256))
        lo, hi = key_rank_bounds(scores, rng.integers(0, 256, 16))
        assert lo <= hi

    def test_partial_recovery_in_plausible_range(self):
        # 12 bytes at rank 0, 4 bytes at rank ~19: the true rank is
        # bounded by 20^4 ~ 2^17.3 times small polynomial factors.
        scores, true = _scores_with_true_ranks([0] * 12 + [19] * 4)
        lo, hi = key_rank_bounds(scores, true)
        assert 8 < hi < 40
        assert lo <= hi

    def test_worse_bytes_raise_rank(self):
        easy, true = _scores_with_true_ranks([0] * 14 + [5] * 2)
        hard, _ = _scores_with_true_ranks([0] * 14 + [120] * 2)
        _, hi_easy = key_rank_bounds(easy, true)
        _, hi_hard = key_rank_bounds(hard, true)
        assert hi_hard > hi_easy

    def test_more_bins_tighten_bounds(self):
        scores, true = _scores_with_true_ranks([3] * 16)
        lo1, hi1 = key_rank_bounds(scores, true, n_bins=256)
        lo2, hi2 = key_rank_bounds(scores, true, n_bins=4096)
        assert (hi2 - lo2) <= (hi1 - lo1) + 1e-9

    def test_two_byte_exhaustive_ground_truth(self):
        """With only 2 informative bytes (the rest fully recovered),
        the rank can be enumerated exactly; the bounds must bracket it."""
        rng = np.random.default_rng(5)
        scores = rng.normal(0, 1.0, (16, 256))
        true = rng.integers(0, 256, 16)
        for j in range(14):
            scores[j, true[j]] = scores[j].max() + 10.0  # certain bytes
        # Exhaustive rank over the two free bytes:
        t14, t15 = scores[14, true[14]], scores[15, true[15]]
        total = t14 + t15
        grid = scores[14][:, None] + scores[15][None, :]
        exact_rank = int(np.count_nonzero(grid > total))
        lo, hi = key_rank_bounds(scores, true, n_bins=4096)
        exact_log2 = np.log2(max(exact_rank, 1))
        assert lo - 0.8 <= exact_log2 <= hi + 0.8

    def test_bad_shapes_rejected(self):
        with pytest.raises(AttackError):
            key_rank_bounds(np.zeros((16, 99)), np.zeros(16, dtype=np.intp))
        with pytest.raises(AttackError):
            key_rank_bounds(np.zeros((16, 256)), np.zeros(15, dtype=np.intp))
