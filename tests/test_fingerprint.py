"""Tests for workload fingerprinting."""

import numpy as np
import pytest

from repro.attacks.fingerprint import (
    WorkloadBench,
    WorkloadFingerprinter,
    extract_features,
    workload_trace,
)
from repro.errors import AttackError
from repro.experiments import common


@pytest.fixture(scope="module")
def bench():
    setup = common.Basys3Setup.create()
    virus = common.make_virus(setup, 2000, 8)
    sensor = common.make_leakydsp(setup, common.placement_pblock(setup.device, "P6"))
    return WorkloadBench(
        sensor, setup.coupling, virus, common.make_hw_model(), common.AES_POSITION
    )


class TestWorkloadTraces:
    def test_idle_trace_near_nominal_readout(self, bench):
        trace = workload_trace(bench, "idle", rng=0)
        busy = workload_trace(bench, "virus-100", rng=0)
        assert trace.mean() > busy.mean()

    def test_trace_length(self, bench):
        assert workload_trace(bench, "aes", n_samples=256, rng=0).shape == (256,)

    def test_duty_scales_droop(self, bench):
        low = workload_trace(bench, "virus-25", rng=1)
        high = workload_trace(bench, "virus-100", rng=1)
        assert high.mean() < low.mean()

    def test_unknown_workload_rejected(self, bench):
        with pytest.raises(AttackError):
            workload_trace(bench, "bitcoin", rng=0)

    def test_bad_duty_rejected(self, bench):
        with pytest.raises(AttackError):
            workload_trace(bench, "virus-0", rng=0)
        with pytest.raises(AttackError):
            workload_trace(bench, "virus-x", rng=0)


class TestFeatures:
    def test_feature_length(self):
        trace = np.random.default_rng(0).normal(30, 2, 256)
        assert extract_features(trace).shape == (15,)

    def test_short_trace_rejected(self):
        with pytest.raises(AttackError):
            extract_features(np.zeros(5))

    def test_mean_feature(self):
        trace = np.full(128, 30.0)
        assert extract_features(trace)[0] == pytest.approx(30.0)


class TestClassifier:
    @pytest.fixture(scope="class")
    def trained(self, bench):
        rng = np.random.default_rng(2)
        workloads = ["idle", "aes", "virus-25", "virus-100"]
        train = {
            w: [workload_trace(bench, w, rng=rng) for _ in range(8)]
            for w in workloads
        }
        fp = WorkloadFingerprinter()
        fp.train(train)
        return fp, workloads

    def test_high_holdout_accuracy(self, trained, bench):
        fp, workloads = trained
        rng = np.random.default_rng(3)
        test = {
            w: [workload_trace(bench, w, rng=rng) for _ in range(6)]
            for w in workloads
        }
        assert fp.accuracy(test) >= 0.9

    def test_classes_listed(self, trained):
        fp, workloads = trained
        assert fp.classes == sorted(workloads)

    def test_untrained_rejects(self):
        with pytest.raises(AttackError):
            WorkloadFingerprinter().classify(np.zeros(256))

    def test_single_class_rejected(self):
        fp = WorkloadFingerprinter()
        with pytest.raises(AttackError):
            fp.train({"idle": [np.zeros(256)]})
