"""Smoke tests: every shipped example runs to completion.

Each example is executed in-process (``runpy``) with stdout captured;
the heavyweight AES campaign example is exercised at reduced scale via
its building blocks elsewhere (tests/test_experiments.py), so here we
run the fast examples end to end exactly as a user would.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "placement_study.py",
    "covert_channel.py",
    "defense_screening.py",
    "workload_fingerprinting.py",
    "leakage_assessment.py",
]


@pytest.mark.parametrize("example", FAST_EXAMPLES)
def test_example_runs(example, capsys):
    runpy.run_path(str(EXAMPLES_DIR / example), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_examples_directory_complete():
    """Every example advertised in the README exists."""
    present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert set(FAST_EXAMPLES) <= present
    assert "aes_key_recovery.py" in present


def test_covert_example_message_mostly_intact(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "covert_channel.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "received" in out
    assert "LeakyDSP" in out  # the message survived transmission
